"""Golden regression numbers for the service scheduler.

Freezes the latency percentiles, SLO attainment, and switch-cycle
totals of one steady and one bursty scenario per sharding policy, so a
scheduler refactor cannot silently shift serving results. The trace
cache is stubbed with synthetic per-pipeline programs, making the
numbers a function of the *scheduler* alone — performance-model changes
do not move them; an intentional scheduler change must update this
table (regenerate by running the scenario below and copying the
values).

Scenario: 60 requests, seed 42, 12000 req/s offered at 64x64 with a
0.5 ms SLO on a three-chip baseline fleet — hot enough that queues form
and bursts blow SLOs, so the numbers actually exercise queueing,
batching, and switch placement.
"""

from dataclasses import dataclass, replace

import pytest

from repro.compile.workloads import gemm_workload
from repro.core.microops import MicroOp, MicroOpProgram
from repro.serve import (
    DEFAULT_TENANT,
    PipelineBatcher,
    ServeCluster,
    SHARDING_POLICIES,
    TenantClass,
    TraceCache,
    generate_tenant_traffic,
    generate_traffic,
    make_admission_policy,
    simulate_service,
)

#: Per-pipeline synthetic frame costs (matches test_serve_invariants).
_PIPELINE_MACS = {"hashgrid": 2e7, "gaussian": 1.6e8, "mesh": 4e7}


def stub_program(pipeline):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=_PIPELINE_MACS.get(pipeline, 5e7), rows=1e3,
                      in_width=32, out_width=4, weight_bytes=1e4),
    )
    return program


def run_scenario(pattern, policy):
    trace = generate_traffic(pattern=pattern, n_requests=60, rate_rps=12000.0,
                             seed=42, resolution=(64, 64), slo_s=0.0005)
    return simulate_service(
        trace,
        ServeCluster(3, policy=policy),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
    )


@dataclass(frozen=True)
class Golden:
    p50_ms: float
    p95_ms: float
    p99_ms: float
    slo_attainment: float
    switch_cycles: float


GOLDEN = {
    ("steady", "cost-aware"): Golden(
        p50_ms=0.071270407, p95_ms=0.186053815,
        p99_ms=0.262092448, slo_attainment=1.000000000,
        switch_cycles=53248.0),
    ("steady", "least-loaded"): Golden(
        p50_ms=0.071270407, p95_ms=0.186053815,
        p99_ms=0.262092448, slo_attainment=1.000000000,
        switch_cycles=53248.0),
    ("steady", "pipeline-affinity"): Golden(
        p50_ms=0.069222407, p95_ms=0.185189157,
        p99_ms=0.262092448, slo_attainment=1.000000000,
        switch_cycles=43008.0),
    ("steady", "round-robin"): Golden(
        p50_ms=0.071270407, p95_ms=0.186053815,
        p99_ms=0.262092448, slo_attainment=1.000000000,
        switch_cycles=53248.0),
    ("bursty", "cost-aware"): Golden(
        p50_ms=0.185378649, p95_ms=1.009230573,
        p99_ms=1.428536610, slo_attainment=0.800000000,
        switch_cycles=36864.0),
    ("bursty", "least-loaded"): Golden(
        p50_ms=0.185378649, p95_ms=1.009230573,
        p99_ms=1.428536610, slo_attainment=0.800000000,
        switch_cycles=36864.0),
    ("bursty", "pipeline-affinity"): Golden(
        p50_ms=0.183233521, p95_ms=1.009230573,
        p99_ms=1.428536610, slo_attainment=0.783333333,
        switch_cycles=32768.0),
    ("bursty", "round-robin"): Golden(
        p50_ms=0.185378649, p95_ms=1.009230573,
        p99_ms=1.428536610, slo_attainment=0.800000000,
        switch_cycles=36864.0),
}


@pytest.mark.parametrize("pattern", ["steady", "bursty"])
@pytest.mark.parametrize("policy", sorted(SHARDING_POLICIES))
def test_scheduler_numbers_are_frozen(pattern, policy):
    golden = GOLDEN[(pattern, policy)]
    report = run_scenario(pattern, policy)
    assert report.latency_p(50) * 1e3 == pytest.approx(golden.p50_ms, rel=1e-6)
    assert report.latency_p(95) * 1e3 == pytest.approx(golden.p95_ms, rel=1e-6)
    assert report.latency_p(99) * 1e3 == pytest.approx(golden.p99_ms, rel=1e-6)
    assert report.slo_attainment == pytest.approx(
        golden.slo_attainment, rel=1e-9)
    assert report.total_switch_cycles == golden.switch_cycles


def test_goldens_cover_every_policy():
    # A new sharding policy must freeze its numbers here too.
    assert {policy for _, policy in GOLDEN} == set(SHARDING_POLICIES)


# ----------------------------------------------------------------------
# Async compile golden: compile-on-miss overlapped with chip execution.
# ----------------------------------------------------------------------
#: Bursty miss storm over 12 scenes: every burst opens cold trace keys,
#: so compile latency dominates the dispatch path. ``compile_workers=0``
#: is the synchronous-visible-compile baseline (the chip stalls for the
#: simulated compile time); two workers overlap compile with execution.
_STORM_SCENES = tuple(f"scene{i}" for i in range(12))


def run_compile_scenario(workers):
    from repro.core.config import CompileLatencyModel

    trace = generate_traffic(pattern="bursty", n_requests=120,
                             rate_rps=8000.0, seed=11, scenes=_STORM_SCENES,
                             resolution=(64, 64), slo_s=0.02)
    return simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        compile_workers=workers,
        compile_latency=CompileLatencyModel(),
    )


#: Frozen (mean queue wait ms, p99 ms, SLO attainment) per compile mode.
GOLDEN_COMPILE = {
    0: (18.671903149, 26.263088736, 0.375000000),   # synchronous compile
    2: (9.315754233, 22.206790589, 0.916666667),    # async, two workers
}


@pytest.mark.parametrize("workers", sorted(GOLDEN_COMPILE))
def test_compile_overlap_numbers_are_frozen(workers):
    mean_queue_ms, p99_ms, slo = GOLDEN_COMPILE[workers]
    report = run_compile_scenario(workers)
    assert report.mean_queue_s * 1e3 == pytest.approx(mean_queue_ms, rel=1e-6)
    assert report.latency_p(99) * 1e3 == pytest.approx(p99_ms, rel=1e-6)
    assert report.slo_attainment == pytest.approx(slo, rel=1e-9)


def test_async_compile_lowers_queue_wait_vs_synchronous():
    # The acceptance headline: overlapping compile-on-miss with chip
    # execution halves the mean queue wait of the bursty miss storm.
    sync = run_compile_scenario(0)
    overlapped = run_compile_scenario(2)
    assert overlapped.mean_queue_s < 0.55 * sync.mean_queue_s
    assert overlapped.slo_attainment > sync.slo_attainment


# ----------------------------------------------------------------------
# Multi-tenant QoS golden: weighted admission + batch preemption on an
# overloaded two-tenant bursty mix.
# ----------------------------------------------------------------------
#: Premium buys a tight SLO with most of the weight; economy tolerates
#: 2x latency and brings 3x the traffic. Offered rate is ~2x the fleet's
#: measured saturation throughput (~30.6k req/s at max_batch=4 on this
#: stub-cost mix), so somebody has to lose — the QoS machinery decides
#: who.
_PREMIUM = TenantClass("premium", slo_multiplier=1.0, weight=4.0, tier=0)
_ECONOMY = TenantClass("economy", slo_multiplier=2.0, weight=1.0, tier=1)


def tenant_trace():
    return generate_tenant_traffic(
        [(_PREMIUM, 0.25), (_ECONOMY, 0.75)],
        pattern="bursty", n_requests=240, rate_rps=60000.0, seed=42,
        resolution=(64, 64), slo_s=0.001)


def run_tenant_scenario(qos):
    trace = tenant_trace()
    if not qos:
        trace = [replace(r, tenant=DEFAULT_TENANT) for r in trace]
    return simulate_service(
        trace,
        ServeCluster(3, policy="pipeline-affinity"),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(max_batch=4),
        admission=make_admission_policy("weighted") if qos else None,
        preempt=qos,
    )


@dataclass(frozen=True)
class TenantGolden:
    p50_ms: float
    p95_ms: float
    p99_ms: float
    slo_attainment: float
    n_shed: int
    n_preempted: int


#: Frozen per-tenant-class numbers of the weighted+preempt run.
GOLDEN_TENANTS = {
    "premium": TenantGolden(
        p50_ms=0.220515196, p95_ms=0.939811125, p99_ms=1.178034294,
        slo_attainment=0.950000000, n_shed=0, n_preempted=0),
    "economy": TenantGolden(
        p50_ms=2.054679791, p95_ms=3.090003220, p99_ms=3.341555929,
        slo_attainment=0.457364341, n_shed=51, n_preempted=45),
}
GOLDEN_FAIRNESS = 0.600397238
GOLDEN_PREEMPTION_EVENTS = 17

#: Frozen per-class SLO attainment of the single-class admit-all
#: baseline (tenant tags stripped, latencies judged against each class's
#: real effective SLO by request id).
GOLDEN_BASELINE = {"premium": 0.200000000, "economy": 0.405555555556}


def baseline_attainment_by_class():
    tagged = tenant_trace()
    effective_slo = {r.request_id: r.effective_slo_s for r in tagged}
    tenant_of = {r.request_id: r.tenant.name for r in tagged}
    report = run_tenant_scenario(qos=False)
    met: dict[str, list[int]] = {}
    for response in report.responses:
        rid = response.request.request_id
        entry = met.setdefault(tenant_of[rid], [0, 0])
        entry[0] += response.latency_s <= effective_slo[rid]
        entry[1] += 1
    return {name: hits / n for name, (hits, n) in met.items()}


def test_tenant_numbers_are_frozen():
    report = run_tenant_scenario(qos=True)
    tenants = report.tenant_report()
    assert set(tenants) == set(GOLDEN_TENANTS)
    for name, golden in GOLDEN_TENANTS.items():
        e = tenants[name]
        assert e["latency_p50_ms"] == pytest.approx(golden.p50_ms, rel=1e-6)
        assert e["latency_p95_ms"] == pytest.approx(golden.p95_ms, rel=1e-6)
        assert e["latency_p99_ms"] == pytest.approx(golden.p99_ms, rel=1e-6)
        assert e["slo_attainment"] == pytest.approx(
            golden.slo_attainment, rel=1e-9)
        assert e["n_shed"] == golden.n_shed
        assert e["n_preempted"] == golden.n_preempted
    assert report.fairness_index == pytest.approx(GOLDEN_FAIRNESS, rel=1e-9)
    assert report.n_preemption_events == GOLDEN_PREEMPTION_EVENTS


def test_baseline_numbers_are_frozen():
    baseline = baseline_attainment_by_class()
    assert set(baseline) == set(GOLDEN_BASELINE)
    for name, golden in GOLDEN_BASELINE.items():
        assert baseline[name] == pytest.approx(golden, rel=1e-9)


def test_qos_holds_premium_slo_under_overload():
    # The acceptance headline: under ~2x-overload bursty traffic,
    # weighted admission + preemption holds premium-tenant SLO
    # attainment >= 90% while the single-class admit-all fleet drops
    # premium below 60% — economy absorbs the shedding.
    qos = run_tenant_scenario(qos=True).tenant_report()
    baseline = baseline_attainment_by_class()
    assert qos["premium"]["slo_attainment"] >= 0.90
    assert baseline["premium"] < 0.60
    assert qos["economy"]["n_shed"] > qos["premium"]["n_shed"]


# ----------------------------------------------------------------------
# Predictive serving goldens: forecast-led autoscaling on a diurnal
# wave, and warm-vs-cold restarts from a persistent trace library.
# ----------------------------------------------------------------------
#: Heavier stub frame costs (10x the scheduler scenario's) so that a
#: two-chip floor saturates around one third of the diurnal crest —
#: fleet sizing, not raw speed, decides SLO attainment.
_WAVE_MACS = {"hashgrid": 2e8, "gaussian": 1.6e9, "mesh": 4e8}


def wave_program(pipeline):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=_WAVE_MACS.get(pipeline, 5e8), rows=1e3,
                      in_width=32, out_width=4, weight_bytes=1e4),
    )
    return program


def wave_autoscaler(mode):
    from repro.serve import Autoscaler

    return Autoscaler(
        min_chips=2, max_chips=6, target_queue_per_chip=1.0,
        slo_target=0.95, window_s=0.25, warmup_s=0.15, cooldown_s=0.15,
        mode=mode, target_utilization=1.0, lead_s=0.0, shrink_margin=1.1,
    )


def run_wave_scenario(mode):
    """Two full diurnal periods at ~2x the floor fleet's capacity; both
    controllers share every constant except the forecast."""
    trace = generate_traffic(pattern="diurnal", n_requests=12000,
                             rate_rps=1500.0, seed=11, resolution=(64, 64),
                             slo_s=0.012)
    return simulate_service(
        trace,
        ServeCluster(2, policy="pipeline-affinity"),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: wave_program(key[1])),
        batcher=PipelineBatcher(),
        autoscaler=wave_autoscaler(mode),
    )


@dataclass(frozen=True)
class PredictiveGolden:
    slo_attainment: float
    p50_ms: float
    p95_ms: float
    chip_seconds: float
    peak_fleet: int
    fleet_timeline: tuple


GOLDEN_WAVE = {
    "reactive": PredictiveGolden(
        slo_attainment=0.872666667,
        p50_ms=1.711154667,
        p95_ms=29.738834724,
        chip_seconds=21.735675464,
        peak_fleet=6,
        fleet_timeline=(
            (0.000000000, 2),
            (0.038397346, 3),
            (0.295316056, 2),
            (0.446142656, 3),
            (0.596142656, 4),
            (0.746142656, 5),
            (0.896142656, 6),
            (1.046147423, 5),
            (1.196185184, 4),
            (1.346636444, 3),
            (1.499273387, 2),
            (1.649431270, 3),
            (1.886372590, 2),
            (4.291174055, 3),
            (4.845884584, 2),
            (4.995931249, 3),
            (5.145931249, 4),
            (5.295931249, 5),
            (5.445931249, 6),
            (5.595931249, 5),
            (5.745973182, 4),
            (5.896040193, 3),
            (6.046893340, 2),
        )),
    "predictive": PredictiveGolden(
        slo_attainment=0.996083333,
        p50_ms=0.670224565,
        p95_ms=4.812028880,
        chip_seconds=21.435036712,
        peak_fleet=5,
        fleet_timeline=(
            (0.000000000, 2),
            (0.038397346, 3),
            (0.338441913, 4),
            (1.076839965, 3),
            (1.243392863, 4),
            (1.393466852, 3),
            (1.545749946, 2),
            (1.712846453, 3),
            (1.863284898, 2),
            (4.113562660, 3),
            (4.483023737, 4),
            (5.244204566, 5),
            (5.464528660, 4),
            (5.614550200, 3),
            (5.768165604, 2),
        )),
}


@pytest.mark.parametrize("mode", sorted(GOLDEN_WAVE))
def test_wave_numbers_are_frozen(mode):
    golden = GOLDEN_WAVE[mode]
    report = run_wave_scenario(mode)
    assert report.slo_attainment == pytest.approx(
        golden.slo_attainment, rel=1e-9)
    assert report.latency_p(50) * 1e3 == pytest.approx(golden.p50_ms, rel=1e-6)
    assert report.latency_p(95) * 1e3 == pytest.approx(golden.p95_ms, rel=1e-6)
    assert report.total_chip_seconds == pytest.approx(
        golden.chip_seconds, rel=1e-9)
    assert report.peak_fleet_size == golden.peak_fleet
    timeline = report.fleet_size_timeline
    assert len(timeline) == len(golden.fleet_timeline)
    for (t, n), (gt, gn) in zip(timeline, golden.fleet_timeline):
        assert t == pytest.approx(gt, abs=1e-6)
        assert n == gn


def test_predictive_leads_the_wave():
    # The acceptance headline: on the diurnal 2x-overload wave the
    # forecast-led controller strictly improves SLO attainment over the
    # reactive one at equal or lower provisioned chip-seconds (and a
    # lower peak fleet: it provisions on time instead of piling on
    # mid-crest).
    reactive = run_wave_scenario("reactive")
    predictive = run_wave_scenario("predictive")
    assert predictive.slo_attainment > reactive.slo_attainment
    assert predictive.total_chip_seconds <= reactive.total_chip_seconds
    assert predictive.latency_p(95) < reactive.latency_p(95)
    assert predictive.peak_fleet_size <= reactive.peak_fleet_size


# ----------------------------------------------------------------------
# Trace-library restart goldens.
# ----------------------------------------------------------------------
def run_library_storm(library):
    """The PR-3 bursty miss storm (12 cold scenes, async compile), now
    restartable: each call is one service process sharing ``library``."""
    from repro.core.config import CompileLatencyModel

    trace = generate_traffic(pattern="bursty", n_requests=120,
                             rate_rps=8000.0, seed=11, scenes=_STORM_SCENES,
                             resolution=(64, 64), slo_s=0.02)
    return simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        compile_workers=2,
        compile_latency=CompileLatencyModel(),
        trace_library=library,
    )


#: Frozen warm-vs-cold restart: (compile misses, warm-started entries,
#: mean queue wait ms, SLO attainment) per phase. The compile-miss
#: delta — 98 cold misses to zero — is the trace library's headline:
#: the restarted service's queue wait drops ~47x and SLO attainment
#: goes to 100% because nothing waits on a compile worker any more.
GOLDEN_RESTART = {
    "cold": (98, 0, 9.315754233, 0.916666667),
    "warm": (0, 35, 0.197851538, 1.000000000),
}


def test_restart_numbers_are_frozen():
    from repro.serve import TraceLibrary

    library = TraceLibrary()
    for phase in ("cold", "warm"):
        misses, warmed, queue_ms, slo = GOLDEN_RESTART[phase]
        report = run_library_storm(library)
        assert report.cache_stats["misses"] == misses
        assert report.cache_stats["warmed"] == warmed
        assert report.mean_queue_s * 1e3 == pytest.approx(queue_ms, rel=1e-6)
        assert report.slo_attainment == pytest.approx(slo, rel=1e-9)
    assert len(library) == 35


def test_warm_start_is_schedule_neutral_without_compile_latency():
    # The acceptance headline: in the default synchronous mode (compile
    # invisible to simulated time) a warm-started service reproduces
    # the cold-start ServiceReport byte for byte — only the cache
    # stats (hits/misses/warm-start counters) may differ.
    from repro.serve import TraceLibrary

    def one_run(library):
        trace = generate_traffic(pattern="bursty", n_requests=120,
                                 rate_rps=8000.0, seed=11,
                                 scenes=_STORM_SCENES, resolution=(64, 64),
                                 slo_s=0.02)
        return simulate_service(
            trace,
            ServeCluster(2),
            cache=TraceCache(capacity=64,
                             compile_fn=lambda key: stub_program(key[1])),
            batcher=PipelineBatcher(),
            trace_library=library,
        )

    library = TraceLibrary()
    cold = one_run(library).to_dict()
    warm = one_run(library).to_dict()
    cold_cache = cold.pop("cache")
    warm_cache = warm.pop("cache")
    assert warm == cold
    assert cold_cache["warmed"] == 0
    assert warm_cache["warmed"] > 0
    assert warm_cache["misses"] == 0


# ----------------------------------------------------------------------
# Chaos goldens: the ext_chaos storm (permanent chip loss + straggler
# window) replayed clean / naive / chaos-hardened, frozen arm by arm.
# ----------------------------------------------------------------------
#: The scenario is imported from the analysis experiment itself so the
#: goldens pin exactly what ``repro report ext_chaos`` prints: one
#: deterministic bursty trace, chip 0 lost for good a quarter in, chip 1
#: straggling at 8x for most of the rest, 2 ms rollback per retry.
from repro.analysis.chaos import (   # noqa: E402
    CHAOS_HEDGE,
    CHAOS_WORKLOAD,
    _autoscaler as chaos_autoscaler,
    _run as chaos_run,
    chaos_plan,
)
from repro.serve import FaultPlan, StragglerWindow, generate_traffic as _gen  # noqa: E402


def run_chaos_arm(arm):
    trace = _gen(**CHAOS_WORKLOAD)
    plan = chaos_plan(max(r.arrival_s for r in trace))
    if arm == "clean":
        return chaos_run(trace)
    if arm == "naive":
        return chaos_run(trace, faults=plan)
    return chaos_run(trace, faults=plan, hedge=CHAOS_HEDGE,
                     autoscaler=chaos_autoscaler())


@dataclass(frozen=True)
class ChaosGolden:
    slo_attainment: float
    p50_ms: float
    p99_ms: float
    availability: float
    n_requeued: int
    n_hedge_won: int
    peak_fleet: int


GOLDEN_CHAOS = {
    "clean": ChaosGolden(
        slo_attainment=0.7291666666667, p50_ms=28.437346686,
        p99_ms=115.013130671, availability=1.000000000,
        n_requeued=0, n_hedge_won=0, peak_fleet=3),
    "naive": ChaosGolden(
        slo_attainment=0.2208333333333, p50_ms=144.438033567,
        p99_ms=460.568908117, availability=0.732422749,
        n_requeued=3, n_hedge_won=0, peak_fleet=3),
    "hardened": ChaosGolden(
        slo_attainment=0.862500000, p50_ms=22.893048503,
        p99_ms=118.771989129, availability=0.974549592,
        n_requeued=0, n_hedge_won=43, peak_fleet=9),
}


@pytest.mark.parametrize("arm", sorted(GOLDEN_CHAOS))
def test_chaos_numbers_are_frozen(arm):
    golden = GOLDEN_CHAOS[arm]
    report = run_chaos_arm(arm)
    assert report.slo_attainment == pytest.approx(
        golden.slo_attainment, rel=1e-9)
    assert report.latency_p(50) * 1e3 == pytest.approx(golden.p50_ms, rel=1e-6)
    assert report.latency_p(99) * 1e3 == pytest.approx(golden.p99_ms, rel=1e-6)
    assert report.fleet_availability == pytest.approx(
        golden.availability, rel=1e-9)
    assert report.n_requeued == golden.n_requeued
    assert report.n_hedge_won == golden.n_hedge_won
    assert report.peak_fleet_size == golden.peak_fleet
    # Conservation closes on every arm, chaos or not.
    assert report.n_offered == (report.n_requests + report.n_shed
                                + report.n_failed)


@pytest.mark.parametrize("arm", ["naive", "hardened"])
def test_chaos_arms_identical_across_columnar_flag(arm):
    # Chaos arms configure faults (and, hardened, hedging + an
    # autoscaler) — every one a scalar-only feature. ``columnar=True``
    # (the library default ``_run`` rides) must silently fall back and
    # reproduce the frozen scalar golden byte for byte.
    import json

    def one(flag):
        trace = _gen(**CHAOS_WORKLOAD)
        plan = chaos_plan(max(r.arrival_s for r in trace))
        kwargs = dict(faults=plan, columnar=flag)
        if arm == "hardened":
            kwargs.update(hedge=CHAOS_HEDGE, autoscaler=chaos_autoscaler())
        return simulate_service(
            trace, ServeCluster(3), cache=TraceCache(capacity=64),
            batcher=PipelineBatcher(max_batch=8), **kwargs)

    reports = [json.dumps(one(flag).to_dict(), sort_keys=True)
               for flag in (True, False)]
    assert reports[0] == reports[1]


def test_hedging_recovers_the_slo_cliff():
    # The acceptance headline: on the chip-loss storm, hedging plus
    # fault-aware autoscaling wins back >= 20 SLO points over the naive
    # engine (the frozen numbers above say 64), at an availability the
    # naive fleet cannot reach because it never replaces the dead chip.
    naive = run_chaos_arm("naive")
    hardened = run_chaos_arm("hardened")
    assert (hardened.slo_attainment - naive.slo_attainment) >= 0.20
    assert hardened.fleet_availability > naive.fleet_availability
    assert hardened.hedge_stats["n_wins"] > 0


# ----------------------------------------------------------------------
# Straggler-heavy fleet golden: the bursty scheduler scenario with two
# of three chips dilated (6x and 3x) for the whole run — the tail moves
# almost 3x while the schedule stays deterministic.
# ----------------------------------------------------------------------
_STRAGGLER_PLAN = FaultPlan(stragglers=[
    StragglerWindow(0, 0.0, 1.0, 6.0),
    StragglerWindow(1, 0.0, 1.0, 3.0),
])

GOLDEN_STRAGGLER = {
    # (p99 ms, SLO attainment); None == fault-free reference.
    None: (1.428536610, 0.7833333333333),
    _STRAGGLER_PLAN: (4.013006559, 0.4833333333333),
}


@pytest.mark.parametrize("plan", GOLDEN_STRAGGLER, ids=["base", "straggler"])
def test_straggler_numbers_are_frozen(plan):
    p99_ms, slo = GOLDEN_STRAGGLER[plan]
    trace = _gen(pattern="bursty", n_requests=60, rate_rps=12000.0, seed=42,
                 resolution=(64, 64), slo_s=0.0005)
    report = simulate_service(
        trace,
        ServeCluster(3),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        faults=plan,
    )
    assert report.latency_p(99) * 1e3 == pytest.approx(p99_ms, rel=1e-6)
    assert report.slo_attainment == pytest.approx(slo, rel=1e-9)


def test_empty_fault_plan_is_schedule_neutral():
    # An attached-but-empty FaultPlan must reproduce the fault-free
    # golden scenario byte for byte — the engine normalizes it away.
    import json

    def one_run(faults):
        return run_scenario("bursty", "cost-aware") if faults is None else \
            simulate_service(
                _gen(pattern="bursty", n_requests=60, rate_rps=12000.0,
                     seed=42, resolution=(64, 64), slo_s=0.0005),
                ServeCluster(3, policy="cost-aware"),
                cache=TraceCache(capacity=64,
                                 compile_fn=lambda key: stub_program(key[1])),
                batcher=PipelineBatcher(),
                faults=faults,
            )

    bare = json.dumps(one_run(None).to_dict(), sort_keys=True)
    attached = json.dumps(one_run(FaultPlan()).to_dict(), sort_keys=True)
    assert bare == attached
