"""Golden regression numbers for the service scheduler.

Freezes the latency percentiles, SLO attainment, and switch-cycle
totals of one steady and one bursty scenario per sharding policy, so a
scheduler refactor cannot silently shift serving results. The trace
cache is stubbed with synthetic per-pipeline programs, making the
numbers a function of the *scheduler* alone — performance-model changes
do not move them; an intentional scheduler change must update this
table (regenerate by running the scenario below and copying the
values).

Scenario: 60 requests, seed 42, 12000 req/s offered at 64x64 with a
0.5 ms SLO on a three-chip baseline fleet — hot enough that queues form
and bursts blow SLOs, so the numbers actually exercise queueing,
batching, and switch placement.
"""

from dataclasses import dataclass

import pytest

from repro.compile.workloads import gemm_workload
from repro.core.microops import MicroOp, MicroOpProgram
from repro.serve import (
    PipelineBatcher,
    ServeCluster,
    SHARDING_POLICIES,
    TraceCache,
    generate_traffic,
    simulate_service,
)

#: Per-pipeline synthetic frame costs (matches test_serve_invariants).
_PIPELINE_MACS = {"hashgrid": 2e7, "gaussian": 1.6e8, "mesh": 4e7}


def stub_program(pipeline):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=_PIPELINE_MACS.get(pipeline, 5e7), rows=1e3,
                      in_width=32, out_width=4, weight_bytes=1e4),
    )
    return program


def run_scenario(pattern, policy):
    trace = generate_traffic(pattern=pattern, n_requests=60, rate_rps=12000.0,
                             seed=42, resolution=(64, 64), slo_s=0.0005)
    return simulate_service(
        trace,
        ServeCluster(3, policy=policy),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
    )


@dataclass(frozen=True)
class Golden:
    p50_ms: float
    p95_ms: float
    p99_ms: float
    slo_attainment: float
    switch_cycles: float


GOLDEN = {
    ("steady", "cost-aware"): Golden(
        p50_ms=0.071270407, p95_ms=0.186053815,
        p99_ms=0.262092448, slo_attainment=1.000000000,
        switch_cycles=53248.0),
    ("steady", "least-loaded"): Golden(
        p50_ms=0.071270407, p95_ms=0.186053815,
        p99_ms=0.262092448, slo_attainment=1.000000000,
        switch_cycles=53248.0),
    ("steady", "pipeline-affinity"): Golden(
        p50_ms=0.069222407, p95_ms=0.185189157,
        p99_ms=0.262092448, slo_attainment=1.000000000,
        switch_cycles=43008.0),
    ("steady", "round-robin"): Golden(
        p50_ms=0.071270407, p95_ms=0.186053815,
        p99_ms=0.262092448, slo_attainment=1.000000000,
        switch_cycles=53248.0),
    ("bursty", "cost-aware"): Golden(
        p50_ms=0.185378649, p95_ms=1.009230573,
        p99_ms=1.428536610, slo_attainment=0.800000000,
        switch_cycles=36864.0),
    ("bursty", "least-loaded"): Golden(
        p50_ms=0.185378649, p95_ms=1.009230573,
        p99_ms=1.428536610, slo_attainment=0.800000000,
        switch_cycles=36864.0),
    ("bursty", "pipeline-affinity"): Golden(
        p50_ms=0.183233521, p95_ms=1.009230573,
        p99_ms=1.428536610, slo_attainment=0.783333333,
        switch_cycles=32768.0),
    ("bursty", "round-robin"): Golden(
        p50_ms=0.185378649, p95_ms=1.009230573,
        p99_ms=1.428536610, slo_attainment=0.800000000,
        switch_cycles=36864.0),
}


@pytest.mark.parametrize("pattern", ["steady", "bursty"])
@pytest.mark.parametrize("policy", sorted(SHARDING_POLICIES))
def test_scheduler_numbers_are_frozen(pattern, policy):
    golden = GOLDEN[(pattern, policy)]
    report = run_scenario(pattern, policy)
    assert report.latency_p(50) * 1e3 == pytest.approx(golden.p50_ms, rel=1e-6)
    assert report.latency_p(95) * 1e3 == pytest.approx(golden.p95_ms, rel=1e-6)
    assert report.latency_p(99) * 1e3 == pytest.approx(golden.p99_ms, rel=1e-6)
    assert report.slo_attainment == pytest.approx(
        golden.slo_attainment, rel=1e-9)
    assert report.total_switch_cycles == golden.switch_cycles


def test_goldens_cover_every_policy():
    # A new sharding policy must freeze its numbers here too.
    assert {policy for _, policy in GOLDEN} == set(SHARDING_POLICIES)


# ----------------------------------------------------------------------
# Async compile golden: compile-on-miss overlapped with chip execution.
# ----------------------------------------------------------------------
#: Bursty miss storm over 12 scenes: every burst opens cold trace keys,
#: so compile latency dominates the dispatch path. ``compile_workers=0``
#: is the synchronous-visible-compile baseline (the chip stalls for the
#: simulated compile time); two workers overlap compile with execution.
_STORM_SCENES = tuple(f"scene{i}" for i in range(12))


def run_compile_scenario(workers):
    from repro.core.config import CompileLatencyModel

    trace = generate_traffic(pattern="bursty", n_requests=120,
                             rate_rps=8000.0, seed=11, scenes=_STORM_SCENES,
                             resolution=(64, 64), slo_s=0.02)
    return simulate_service(
        trace,
        ServeCluster(2),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        compile_workers=workers,
        compile_latency=CompileLatencyModel(),
    )


#: Frozen (mean queue wait ms, p99 ms, SLO attainment) per compile mode.
GOLDEN_COMPILE = {
    0: (18.671903149, 26.263088736, 0.375000000),   # synchronous compile
    2: (9.315754233, 22.206790589, 0.916666667),    # async, two workers
}


@pytest.mark.parametrize("workers", sorted(GOLDEN_COMPILE))
def test_compile_overlap_numbers_are_frozen(workers):
    mean_queue_ms, p99_ms, slo = GOLDEN_COMPILE[workers]
    report = run_compile_scenario(workers)
    assert report.mean_queue_s * 1e3 == pytest.approx(mean_queue_ms, rel=1e-6)
    assert report.latency_p(99) * 1e3 == pytest.approx(p99_ms, rel=1e-6)
    assert report.slo_attainment == pytest.approx(slo, rel=1e-9)


def test_async_compile_lowers_queue_wait_vs_synchronous():
    # The acceptance headline: overlapping compile-on-miss with chip
    # execution halves the mean queue wait of the bursty miss storm.
    sync = run_compile_scenario(0)
    overlapped = run_compile_scenario(2)
    assert overlapped.mean_queue_s < 0.55 * sync.mean_queue_s
    assert overlapped.slo_attainment > sync.slo_attainment
