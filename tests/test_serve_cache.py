"""Trace cache: LRU behaviour, stats, and compile skipping."""

import pytest

from repro.compile.workloads import gemm_workload
from repro.core.microops import MicroOp, MicroOpProgram
from repro.errors import ConfigError
from repro.serve import TraceCache


def tiny_program(pipeline="hashgrid"):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=1e6, rows=1e3, in_width=32, out_width=4,
                      weight_bytes=1e4),
    )
    return program


class CountingCompiler:
    """Stub compile_fn recording how often each key compiles."""

    def __init__(self):
        self.calls = []

    def __call__(self, key):
        self.calls.append(key)
        return tiny_program(pipeline=key[1])


KEY_A = ("lego", "hashgrid", 64, 64)
KEY_B = ("lego", "gaussian", 64, 64)
KEY_C = ("room", "hashgrid", 64, 64)


class TestHitsAndMisses:
    def test_hit_skips_recompilation(self):
        compiler = CountingCompiler()
        cache = TraceCache(capacity=4, compile_fn=compiler)
        program1, hit1 = cache.get(KEY_A)
        program2, hit2 = cache.get(KEY_A)
        assert (hit1, hit2) == (False, True)
        assert program1 is program2
        assert compiler.calls == [KEY_A]  # second lookup never compiled
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_distinct_resolutions_are_distinct_keys(self):
        compiler = CountingCompiler()
        cache = TraceCache(capacity=4, compile_fn=compiler)
        cache.get(("lego", "hashgrid", 64, 64))
        cache.get(("lego", "hashgrid", 128, 128))
        assert cache.stats.misses == 2
        assert len(compiler.calls) == 2

    def test_compile_time_is_accounted(self):
        cache = TraceCache(capacity=4, compile_fn=CountingCompiler())
        cache.get(KEY_A)
        cache.get(KEY_A)
        assert cache.stats.compile_s >= 0.0
        assert cache.stats.compile_s_saved >= 0.0
        stats = cache.stats.to_dict()
        assert stats["hits"] == 1 and stats["misses"] == 1


class TestLRU:
    def test_eviction_order_is_least_recently_used(self):
        compiler = CountingCompiler()
        cache = TraceCache(capacity=2, compile_fn=compiler)
        cache.get(KEY_A)
        cache.get(KEY_B)
        cache.get(KEY_A)          # refresh A; B is now LRU
        cache.get(KEY_C)          # evicts B
        assert KEY_A in cache and KEY_C in cache
        assert KEY_B not in cache
        assert cache.stats.evictions == 1
        # Re-fetching the evicted key recompiles.
        cache.get(KEY_B)
        assert compiler.calls.count(KEY_B) == 2

    def test_keys_report_lru_order(self):
        cache = TraceCache(capacity=3, compile_fn=CountingCompiler())
        cache.get(KEY_A)
        cache.get(KEY_B)
        cache.get(KEY_A)
        assert cache.keys == (KEY_B, KEY_A)

    def test_zero_capacity_disables_caching(self):
        compiler = CountingCompiler()
        cache = TraceCache(capacity=0, compile_fn=compiler)
        cache.get(KEY_A)
        cache.get(KEY_A)
        assert cache.stats.hits == 0 and cache.stats.misses == 2
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigError):
            TraceCache(capacity=-1)

    def test_clear_drops_entries_but_keeps_counters(self):
        cache = TraceCache(capacity=4, compile_fn=CountingCompiler())
        cache.get(KEY_A)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1


class TestPeekIsSideEffectFree:
    """``peek`` must never perturb LRU state — the event engine reads
    pinned programs through it on the execution path, and the PR-3
    recency predictor assumes execution-time reads don't reorder the
    eviction queue."""

    def test_peek_returns_resident_program_without_stats(self):
        compiler = CountingCompiler()
        cache = TraceCache(capacity=4, compile_fn=compiler)
        program, _ = cache.get(KEY_A)
        before = (cache.stats.hits, cache.stats.misses)
        assert cache.peek(KEY_A) is program
        assert cache.peek(KEY_B) is None  # miss: no compile, no counter
        assert (cache.stats.hits, cache.stats.misses) == before
        assert compiler.calls == [KEY_A]

    def test_peek_never_mutates_lru_order(self):
        cache = TraceCache(capacity=3, compile_fn=CountingCompiler())
        cache.get(KEY_A)
        cache.get(KEY_B)
        cache.get(KEY_C)
        assert cache.keys == (KEY_A, KEY_B, KEY_C)
        cache.peek(KEY_A)  # a touch/get here would move A to MRU
        cache.peek(KEY_B)
        assert cache.keys == (KEY_A, KEY_B, KEY_C), \
            "peek reordered the LRU queue"

    def test_eviction_order_survives_peek_heavy_workload(self):
        compiler = CountingCompiler()
        cache = TraceCache(capacity=2, compile_fn=compiler)
        cache.get(KEY_A)
        cache.get(KEY_B)
        for _ in range(25):  # execution-path reads of the LRU victim
            cache.peek(KEY_A)
        cache.get(KEY_C)  # must evict A (oldest *use*), not B
        assert KEY_A not in cache
        assert KEY_B in cache and KEY_C in cache
        # The evicted key's compile-cost record went with it: a re-fetch
        # recompiles and is charged as a fresh miss.
        assert cache.compile_cost_s(KEY_A) == 0.0
        cache.get(KEY_A)
        assert compiler.calls.count(KEY_A) == 2

    def test_touch_does_refresh_lru_order(self):
        # The intended contrast: touch (execution-time *use*) refreshes,
        # peek (read-only inspection) does not.
        cache = TraceCache(capacity=2, compile_fn=CountingCompiler())
        cache.get(KEY_A)
        cache.get(KEY_B)
        cache.touch(KEY_A)        # A is now MRU
        cache.get(KEY_C)          # evicts B
        assert KEY_A in cache and KEY_C in cache
        assert KEY_B not in cache


class TestDefaultCompiler:
    def test_compiles_real_programs(self):
        cache = TraceCache(capacity=2)
        program, hit = cache.get(("lego", "hashgrid", 48, 48))
        assert not hit
        assert program.pipeline == "hashgrid"
        assert program.pixels == 48 * 48
        _, hit = cache.get(("lego", "hashgrid", 48, 48))
        assert hit
