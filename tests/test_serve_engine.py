"""The unified event engine: async compile, prefetch, pricing, accounting.

Covers what the scheduler-era suites cannot: compilation as a simulated
resource (worker pools, sync-visible compile, overlap under miss
storms), cross-request trace prefetch (hit/waste counters, accuracy),
deterministic compile accounting (byte-identical reports including
cache stats), the vectorized cost table, and the serving-side frame
timeline with its compile/prefetch phase labels.
"""

import pytest

from repro.core.config import AcceleratorConfig, CompileLatencyModel
from repro.core.microops import MicroOpProgram
from repro.core.simulator import UniRenderAccelerator
from repro.errors import ConfigError
from repro.serve import (
    CompileWorkerPool,
    CostTable,
    PipelineBatcher,
    RenderRequest,
    ServeCluster,
    TraceCache,
    TracePrefetcher,
    generate_traffic,
    response_timeline,
    simulate_service,
)
# One canonical copy of the synthetic per-pipeline frame costs: the
# golden numbers in several suites depend on these staying identical.
from tests.test_serve_invariants import stub_program


def stub_cache(capacity=64, model=None):
    return TraceCache(capacity=capacity,
                      compile_fn=lambda key: stub_program(key[1]),
                      latency_model=model)


def request(i, pipeline="hashgrid", arrival=0.0, scene="lego", slo=0.05):
    return RenderRequest(
        request_id=i, scene=scene, pipeline=pipeline,
        width=64, height=64, arrival_s=arrival, slo_s=slo,
    )


MODEL = CompileLatencyModel()

#: Bursty miss storm: every burst opens cold trace keys, so compile
#: latency lands squarely on the dispatch path.
STORM_SCENES = tuple(f"scene{i}" for i in range(12))


def storm_trace(n=240, rate=8000.0, seed=7):
    return generate_traffic("bursty", n_requests=n, rate_rps=rate, seed=seed,
                            scenes=STORM_SCENES, resolution=(64, 64),
                            slo_s=0.02)


def run_storm(**kwargs):
    return simulate_service(
        storm_trace(),
        ServeCluster(2),
        cache=stub_cache(),
        batcher=PipelineBatcher(),
        **kwargs,
    )


class TestCompileModes:
    def test_sync_model_charges_the_chip(self):
        legacy = run_storm()
        sync = run_storm(compile_latency=MODEL)
        # Visible compile stalls the dispatch path: same schedule shape,
        # strictly later completions wherever a miss occurred.
        assert sync.mean_queue_s > legacy.mean_queue_s
        assert sync.makespan_s > legacy.makespan_s
        origins = {r.compile_origin for r in sync.responses}
        assert origins == {None, "sync"}
        missed = [r for r in sync.responses if r.compile_origin == "sync"]
        assert missed and all(r.compile_s > 0 for r in missed)
        # Compile time is inside the chip's service span, not the queue.
        assert all(r.service_s > r.compile_s for r in missed)

    def test_async_overlap_beats_sync_under_miss_storm(self):
        sync = run_storm(compile_latency=MODEL)
        overlapped = run_storm(compile_workers=4, compile_latency=MODEL)
        assert overlapped.mean_queue_s < 0.25 * sync.mean_queue_s
        assert overlapped.latency_p(99) < sync.latency_p(99)
        stats = overlapped.compile_stats
        assert stats["workers"] == 4
        distinct = {r.trace_key for r in storm_trace()}
        assert stats["demand_jobs"] == len(distinct)
        assert stats["busy_s"] > 0

    def test_worker_contention_one_vs_four(self):
        one = run_storm(compile_workers=1, compile_latency=MODEL)
        four = run_storm(compile_workers=4, compile_latency=MODEL)
        # Same compile demand either way...
        assert (one.compile_stats["demand_jobs"]
                == four.compile_stats["demand_jobs"])
        assert one.compile_stats["busy_s"] == pytest.approx(
            four.compile_stats["busy_s"])
        # ...but a single worker serializes the storm: demand jobs queue
        # behind each other, and requests wait visibly longer.
        assert one.compile_stats["demand_wait_s"] > 0
        assert four.compile_stats["demand_wait_s"] \
            < one.compile_stats["demand_wait_s"]
        assert four.mean_queue_s < one.mean_queue_s

    def test_every_request_served_exactly_once_async(self):
        report = run_storm(compile_workers=2, compile_latency=MODEL)
        served = sorted(r.request.request_id for r in report.responses)
        assert served == list(range(240))

    def test_workers_zero_without_model_is_the_frozen_baseline(self):
        legacy = run_storm()
        explicit = run_storm(compile_workers=0)
        assert legacy.to_dict() == explicit.to_dict()

    def test_prefetch_requires_workers(self):
        with pytest.raises(ConfigError):
            run_storm(prefetch=True)

    def test_conflicting_latency_models_rejected(self):
        # A warm cache priced under one model must not be silently
        # repriced under another — recompiles would mix the two.
        other = CompileLatencyModel(base_s=5e-3)
        with pytest.raises(ConfigError, match="latency"):
            simulate_service(
                [request(0)], ServeCluster(1),
                cache=stub_cache(model=MODEL), batcher=PipelineBatcher(),
                compile_latency=other,
            )


class TestDeterministicAccounting:
    def test_reports_are_byte_identical_including_cache_stats(self):
        # The satellite fix: compile costs are simulated, so the whole
        # report payload (cache stats included) replays identically.
        for kwargs in (
            {},
            {"compile_latency": MODEL},
            {"compile_workers": 2, "compile_latency": MODEL},
            {"compile_workers": 2, "compile_latency": MODEL,
             "prefetch": True},
        ):
            a = run_storm(**kwargs)
            b = run_storm(**kwargs)
            assert a.to_dict() == b.to_dict(), kwargs

    def test_wall_time_is_a_separate_diagnostic(self):
        cache = stub_cache(model=MODEL)
        report = simulate_service(
            storm_trace(n=60), ServeCluster(2), cache=cache,
            batcher=PipelineBatcher(), compile_workers=2,
            compile_latency=MODEL,
        )
        # Wall time accrues on the stats object but never reaches the
        # report payload — that is what keeps reports reproducible.
        assert cache.stats.compile_wall_s >= 0.0
        assert "compile_wall_s" not in report.cache_stats
        assert report.cache_stats["compile_s"] > 0.0


class TestPrefetch:
    def test_prefetch_turns_misses_into_hits(self):
        cold = run_storm(compile_workers=4, compile_latency=MODEL)
        warmed = run_storm(compile_workers=4, compile_latency=MODEL,
                           prefetch=True)
        stats = warmed.prefetch_stats
        assert stats["issued"] > 0
        assert stats["issued"] == stats["hits"] + stats["waste"]
        assert 0.0 <= stats["accuracy"] <= 1.0
        if stats["hits"]:
            # Prefetched traces surface on responses and save misses.
            assert any(r.prefetched for r in warmed.responses)
            assert (warmed.cache_stats["misses"]
                    <= cold.cache_stats["misses"])

    def test_prefetcher_prediction_is_recency_ordered(self):
        prefetcher = TracePrefetcher(history=8, max_candidates=4)
        prefetcher.observe(("lego", "hashgrid", 64, 64))
        prefetcher.observe(("room", "gaussian", 64, 64))
        candidates = prefetcher.candidates()
        assert len(candidates) == 4
        # Most recent pipeline (gaussian) and scene (room) lead.
        assert candidates[0] == ("room", "gaussian", 64, 64)
        assert all(len(k) == 4 for k in candidates)

    def test_prefetch_counters(self):
        prefetcher = TracePrefetcher()
        key = ("lego", "hashgrid", 64, 64)
        prefetcher.note_issue(key)
        assert prefetcher.is_unused(key)
        assert (prefetcher.issued, prefetcher.hits, prefetcher.waste) == (1, 0, 1)
        prefetcher.note_use(key)
        prefetcher.note_use(key)  # only the first use counts
        assert (prefetcher.issued, prefetcher.hits, prefetcher.waste) == (1, 1, 0)
        assert prefetcher.accuracy == 1.0

    def test_evicted_prefetch_is_not_credited_after_demand_recompile(self):
        prefetcher = TracePrefetcher()
        key = ("lego", "hashgrid", 64, 64)
        prefetcher.note_issue(key)
        # The prefetched copy was evicted unused; a demand miss had to
        # compile from scratch. A later hit on that demand-compiled
        # entry must count as prefetch waste, not a prefetch hit.
        prefetcher.note_demand_compile(key)
        prefetcher.note_use(key)
        assert prefetcher.hits == 0
        assert prefetcher.waste == 1

    def test_prefetcher_validation(self):
        with pytest.raises(ConfigError):
            TracePrefetcher(history=0)
        with pytest.raises(ConfigError):
            TracePrefetcher(max_candidates=0)


class TestWorkerPool:
    def test_jobs_pack_onto_earliest_free_worker(self):
        pool = CompileWorkerPool(2)
        assert pool.submit(0.0, 1.0, demand=True) == 1.0
        assert pool.submit(0.0, 1.0, demand=True) == 1.0   # second worker
        assert pool.submit(0.0, 1.0, demand=True) == 2.0   # queues behind
        assert pool.stats.demand_jobs == 3
        assert pool.stats.busy_s == pytest.approx(3.0)
        assert pool.stats.demand_wait_s == pytest.approx(1.0)
        assert not pool.idle_worker(0.5)
        assert pool.idle_worker(1.0)

    def test_pool_validation(self):
        with pytest.raises(ConfigError):
            CompileWorkerPool(0)


class TestCostTable:
    def test_prices_each_pair_once(self):
        table = CostTable()
        accel = UniRenderAccelerator(AcceleratorConfig())
        key = ("lego", "hashgrid", 64, 64)
        program = stub_program("hashgrid")
        first = table.price(key, accel, program)
        again = table.price(key, accel, program)
        assert first == again
        assert len(table) == 1
        # A different design point is a different row.
        big = UniRenderAccelerator(AcceleratorConfig().scaled(2, 2))
        table.price(key, big, program)
        assert len(table) == 2
        arrays = table.as_arrays()
        assert arrays["cycles"].shape == (2,)
        assert (arrays["cycles"] > 0).all()
        assert (arrays["energy_j"] > 0).all()

    def test_result_for_returns_full_frame(self):
        table = CostTable()
        accel = UniRenderAccelerator(AcceleratorConfig())
        key = ("lego", "mesh", 64, 64)
        table.price(key, accel, stub_program("mesh"))
        result = table.result_for(key, accel.config)
        assert result is not None and result.pipeline == "mesh"
        assert table.result_for(key, AcceleratorConfig().scaled(2, 2)) is None


class TestServingTimeline:
    def test_compile_phase_is_labelled(self):
        report = simulate_service(
            [request(0, "mesh", 0.0)], ServeCluster(1),
            cache=stub_cache(model=MODEL), batcher=PipelineBatcher(),
            compile_latency=MODEL,
        )
        response = report.responses[0]
        assert response.compile_origin == "sync"
        from repro.serve import CostTable  # engine-owned; rebuild here
        accel = UniRenderAccelerator(AcceleratorConfig())
        table = CostTable()
        table.price(response.request.trace_key, accel,
                    stub_program("mesh"))
        result = table.result_for(response.request.trace_key, accel.config)
        text = response_timeline(response, result)
        assert "sync [compile]" in text.splitlines()[0]
        assert "[" in text.splitlines()[1]  # frame phases follow

    def test_timeline_zero_cycles_is_guarded(self):
        from repro.core.scheduler import FrameSchedule
        from repro.core.simulator import FrameResult
        from repro.core.energy import EnergyBreakdown
        program = MicroOpProgram(pipeline="mesh", pixels=0)
        empty = FrameResult(
            pipeline="mesh", cycles=0.0, fps=0.0,
            energy=EnergyBreakdown(), power_w=0.0, dram_bytes=0.0,
            reconfig_cycles=0.0, cycles_by_op={},
            schedule=FrameSchedule(program=program),
        )
        assert empty.timeline() == ""                     # no phases, no crash
        text = empty.timeline(compile_cycles=100.0)       # compile-only bar
        assert "compile [compile]" in text


class TestAsyncInvariants:
    """The invariant suite's properties must also hold for every
    compile model, including async compile under autoscaling and
    admission control."""

    @pytest.mark.parametrize("kwargs", [
        {"compile_latency": MODEL},
        {"compile_workers": 1, "compile_latency": MODEL},
        {"compile_workers": 4, "compile_latency": MODEL},
        {"compile_workers": 4, "compile_latency": MODEL, "prefetch": True},
    ], ids=["sync", "w1", "w4", "w4+prefetch"])
    def test_invariants_hold(self, kwargs):
        from tests.test_serve_invariants import assert_invariants

        trace = storm_trace()
        report = simulate_service(
            trace, ServeCluster(2), cache=stub_cache(),
            batcher=PipelineBatcher(), **kwargs,
        )
        assert_invariants(report, trace)

    def test_invariants_hold_with_autoscaler_and_admission(self):
        from tests.test_serve_invariants import assert_invariants
        from repro.serve import Autoscaler, make_admission_policy

        trace = storm_trace()
        report = simulate_service(
            trace,
            ServeCluster(1, policy="cost-aware"),
            cache=stub_cache(),
            batcher=PipelineBatcher(),
            autoscaler=Autoscaler(min_chips=1, max_chips=4,
                                  target_queue_per_chip=2.0,
                                  window_s=0.005, warmup_s=0.0005,
                                  cooldown_s=0.001),
            admission=make_admission_policy("slo-shed"),
            compile_workers=2,
            compile_latency=MODEL,
            prefetch=True,
        )
        assert_invariants(report, trace)
        assert report.peak_fleet_size >= 1
        assert report.compile_stats["demand_jobs"] > 0


class TestBatcherEquivalence:
    def test_lane_selection_matches_queue_scan(self):
        """`PipelineBatcher.next_batch` is the executable spec of batch
        selection; the engine's lane-based `_PendingIndex` must drain a
        queue into the exact same batch sequence."""
        from collections import deque
        from repro.serve.engine import _PendingIndex

        trace = generate_traffic("mixed", n_requests=60, seed=5,
                                 resolution=(64, 64))
        scan = PipelineBatcher(max_batch=3)
        pending = deque(trace)
        scan_batches = []
        while pending:
            scan_batches.append(scan.next_batch(pending).requests)

        lanes = PipelineBatcher(max_batch=3)
        index = _PendingIndex()
        for request in trace:
            index.push(request)
        lane_batches = []
        while index.n_pending:
            anchor = index.anchor(lambda r: True)
            taken = index.take(anchor.pipeline, lanes.max_batch,
                               lambda r: True)
            lane_batches.append(lanes.make_batch(anchor.pipeline,
                                                 taken).requests)
        assert lane_batches == scan_batches


class TestCacheEvictionOrder:
    def test_async_inserts_follow_lru_order(self):
        cache = stub_cache(capacity=2, model=MODEL)
        a, b, c = (("s1", "mesh", 64, 64), ("s2", "mesh", 64, 64),
                   ("s3", "mesh", 64, 64))
        cache.insert(a, stub_program("mesh"), sim_cost_s=0.001)
        cache.insert(b, stub_program("mesh"), sim_cost_s=0.001)
        assert cache.lookup(a) is not None        # refresh a; b is LRU
        cache.insert(c, stub_program("mesh"), sim_cost_s=0.001)
        assert a in cache and c in cache and b not in cache
        assert cache.stats.evictions == 1
        assert cache.keys == (a, c)
        # touch() refreshes order without stats.
        hits = cache.stats.hits
        cache.touch(a)
        assert cache.keys == (c, a)
        assert cache.stats.hits == hits

    def test_eviction_under_service_load(self):
        # Capacity far below the distinct-trace count: the engine must
        # keep pricing correct even as programs churn out of the cache.
        report = simulate_service(
            storm_trace(n=120), ServeCluster(2),
            cache=stub_cache(capacity=4, model=MODEL),
            batcher=PipelineBatcher(), compile_workers=2,
            compile_latency=MODEL,
        )
        assert report.cache_stats["evictions"] > 0
        assert len(report.responses) == 120


class TestTieBreakContract:
    """The pinned ``(t, kind, seq)`` event ordering.

    The engine's correctness under the columnar refactor hangs on one
    total order (documented at the event-kind constants in
    ``engine.py``): events sort by timestamp, then by *kind* — arrivals
    (kind 0) before every dynamic event — then by monotonic insertion
    seq within a kind. These tests pin both halves: the heap's pop
    order under a shuffled same-instant burst, and the user-visible
    consequence (an arrival racing a compile completion at the same
    instant must observe the cache *before* the compile lands).
    """

    def test_shuffled_same_instant_events_pop_in_kind_seq_order(self):
        import heapq
        import random

        from repro.serve.engine import (
            EventEngine,
            _CHIP_CRASH,
            _CHIP_FREE,
            _CHIP_RECOVER,
            _COMPILE_DONE,
            _HEDGE_SETTLE,
            _SCALE_TICK,
        )

        engine = EventEngine([request(0)], cache=stub_cache())
        kinds = [_COMPILE_DONE, _CHIP_FREE, _SCALE_TICK, _CHIP_CRASH,
                 _CHIP_RECOVER, _HEDGE_SETTLE] * 3
        random.Random(42).shuffle(kinds)
        for index, kind in enumerate(kinds):
            engine._push(1.0, kind, payload=index)
        popped = [heapq.heappop(engine._events)
                  for _ in range(len(engine._events))]
        assert popped == sorted(popped), \
            "heap must yield strict (t, kind, seq) order"
        # Within one kind, seq preserves push order exactly.
        for kind in set(kinds):
            same = [payload for (_t, k, _s, payload) in popped
                    if k == kind and payload is not None]
            assert same == sorted(same)

    def test_arrival_seqs_precede_dynamic_seqs(self):
        from repro.serve.engine import EventEngine, _SCALE_TICK

        requests = [request(i, arrival=0.001 * i) for i in range(5)]
        engine = EventEngine(requests, cache=stub_cache())
        # Arrivals own seqs 0..n-1 (their sorted order); the first
        # dynamic push continues the numbering after them, so at equal
        # (t, kind) an arrival-era seq can never lose to a dynamic one.
        assert engine._event_seq == len(requests)
        engine._push(0.0, _SCALE_TICK)
        assert engine._events[0][2] == len(requests)

    def test_arrival_at_compile_done_instant_misses(self):
        # Request A misses and submits an async compile finishing at
        # instant d. Request B (same trace key) arrives at exactly d:
        # the arrival (kind 0) ingests before the compile-done event
        # (kind 1) lands the program, so B must register as a miss that
        # joins the in-flight compile — never as a hit.
        done_s = MODEL.latency_s(stub_program("hashgrid"))
        requests = [request(0, arrival=0.0),
                    request(1, arrival=done_s)]
        report = simulate_service(
            requests, ServeCluster(1),
            cache=stub_cache(model=MODEL),
            batcher=PipelineBatcher(),
            compile_workers=1, compile_latency=MODEL,
        )
        by_id = {r.request.request_id: r for r in report.responses}
        assert not by_id[0].cache_hit
        assert not by_id[1].cache_hit
        # A third request strictly after d sees the landed program.
        late = simulate_service(
            [request(0, arrival=0.0), request(1, arrival=done_s * 2)],
            ServeCluster(1), cache=stub_cache(model=MODEL),
            batcher=PipelineBatcher(),
            compile_workers=1, compile_latency=MODEL,
        )
        by_id = {r.request.request_id: r for r in late.responses}
        assert by_id[1].cache_hit
