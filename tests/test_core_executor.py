"""Tests for the behavioural array executor: every Table III
configuration must compute what its pipeline stage needs."""

import numpy as np
import pytest

from repro.core import MicroOp
from repro.core.executor import ArrayExecutor
from repro.core.network import ArrayMode
from repro.errors import ConfigError, SimulationError


@pytest.fixture()
def array():
    return ArrayExecutor(rows=4, cols=4)


class TestConfiguration:
    def test_bad_dimensions(self):
        with pytest.raises(ConfigError):
            ArrayExecutor(rows=0, cols=4)

    def test_configure_applies_table_iii(self, array):
        array.configure(MicroOp.GEMM)
        assert array.network.mode is ArrayMode.SYSTOLIC
        array.configure(MicroOp.COMBINED_GRID)
        assert array.network.mode is ArrayMode.PIPELINE
        assert array.configured_for is MicroOp.COMBINED_GRID

    def test_reconfiguration_counted(self, array):
        array.configure(MicroOp.GEMM)
        count = array.network.reconfigurations
        array.configure(MicroOp.GEMM)  # identical: no change
        assert array.network.reconfigurations == count
        array.configure(MicroOp.SORTING)
        assert array.network.reconfigurations == count + 1

    def test_wrong_mode_rejected(self, array):
        array.configure(MicroOp.GEMM)
        with pytest.raises(SimulationError):
            array.run_sorting([[3, 1, 2]])


class TestGeometricDataflow:
    def test_matches_reference_rasterization(self, array):
        array.configure(MicroOp.GEOMETRIC)
        rng = np.random.default_rng(0)
        # Two overlapping triangles at different depths.
        triangles = np.array(
            [
                [[0, 0, 2.0], [10, 0, 2.0], [0, 10, 2.0]],
                [[0, 0, 1.0], [10, 0, 1.0], [0, 10, 1.0]],
            ]
        )
        pixels = rng.uniform(0.5, 4.0, size=(8, 2))
        depths, indices = array.run_geometric(triangles, pixels)
        # Every probed pixel inside both triangles must pick the nearer.
        inside = pixels.sum(axis=1) < 10
        assert np.all(indices[inside] == 1)
        assert np.allclose(depths[inside], 1.0)

    def test_miss_gives_sentinel(self, array):
        array.configure(MicroOp.GEOMETRIC)
        triangles = np.array([[[0, 0, 1.0], [1, 0, 1.0], [0, 1, 1.0]]])
        depths, indices = array.run_geometric(triangles, np.array([[5.0, 5.0]]))
        assert np.isinf(depths[0]) and indices[0] == -1

    def test_degenerate_triangle_skipped(self, array):
        array.configure(MicroOp.GEOMETRIC)
        degenerate = np.array([[[0, 0, 1.0], [1, 1, 1.0], [2, 2, 1.0]]])
        depths, indices = array.run_geometric(degenerate, np.array([[1.0, 1.0]]))
        assert indices[0] == -1


class TestGridDataflows:
    def test_combined_grid_matches_numpy(self, array):
        array.configure(MicroOp.COMBINED_GRID)
        rng = np.random.default_rng(1)
        tables = [rng.normal(size=16) for _ in range(3)]
        indices = rng.integers(0, 16, size=(3, 4))
        weights = rng.uniform(0, 1, size=(3, 4))
        out = array.run_combined_grid(tables, indices, weights)
        expected = np.array(
            [np.dot(tables[l][indices[l]], weights[l]) for l in range(3)]
        )
        assert np.allclose(out, expected)

    def test_combined_grid_capacity(self, array):
        array.configure(MicroOp.COMBINED_GRID)
        tables = [np.zeros(4)] * 5  # five levels on a 4-row array
        with pytest.raises(SimulationError):
            array.run_combined_grid(tables, np.zeros((5, 2), int), np.zeros((5, 2)))

    def test_decomposed_grid_multiplicative(self, array):
        array.configure(MicroOp.DECOMPOSED_GRID)
        values = np.array([[1.0, 3.0], [2.0, 2.0], [4.0, 0.0]])
        weights = np.array([[0.5, 0.5], [0.25, 0.75], [1.0, 0.0]])
        out = array.run_decomposed_grid(values, weights)
        per_plane = (values * weights).sum(axis=1)  # [2.0, 2.0, 4.0]
        assert out == pytest.approx(np.prod(per_plane))

    def test_decomposed_grid_additive_mode(self, array):
        array.configure(MicroOp.DECOMPOSED_GRID)
        values = np.ones((2, 3))
        weights = np.ones((2, 3))
        assert array.run_decomposed_grid(values, weights, combine="add") == 6.0


class TestSortingDataflow:
    def test_sorts_every_patch_independently(self, array):
        array.configure(MicroOp.SORTING)
        patches = [[5, 3, 9, 1], [2, 2, 0], [7], []]
        sorted_patches, comparisons = array.run_sorting(patches)
        assert sorted_patches == [[1, 3, 5, 9], [0, 2, 2], [7], []]
        assert comparisons > 0

    def test_too_many_patches(self, array):
        array.configure(MicroOp.SORTING)
        with pytest.raises(SimulationError):
            array.run_sorting([[1]] * 17)


class TestGemmDataflow:
    def test_matches_numpy(self, array):
        array.configure(MicroOp.GEMM)
        rng = np.random.default_rng(2)
        weights = rng.normal(size=(6, 5))
        inputs = rng.normal(size=(9, 6))
        out = array.run_gemm(weights, inputs)
        assert np.allclose(out, inputs @ weights)

    def test_full_pipeline_sequence(self, array):
        """A mesh-like frame: GEMM -> GEOMETRIC -> GEMM, with the
        reconfigurations the scheduler would charge."""
        rng = np.random.default_rng(3)
        array.configure(MicroOp.GEMM)
        verts = array.run_gemm(rng.normal(size=(4, 4)), rng.normal(size=(3, 4)))
        assert verts.shape == (3, 4)

        start = array.network.reconfigurations
        array.configure(MicroOp.GEOMETRIC)
        triangles = np.array([[[0, 0, 1.0], [8, 0, 1.0], [0, 8, 1.0]]])
        depths, _ = array.run_geometric(triangles, np.array([[1.0, 1.0]]))
        assert np.isfinite(depths[0])

        array.configure(MicroOp.GEMM)
        out = array.run_gemm(rng.normal(size=(2, 2)), rng.normal(size=(4, 2)))
        assert out.shape == (4, 2)
        assert array.network.reconfigurations == start + 2
