"""Discrete-event service loop: batching, switches, SLOs, determinism."""

import pytest

from repro.compile.workloads import gemm_workload
from repro.core.microops import MicroOp, MicroOpProgram
from repro.errors import ConfigError, SimulationError
from repro.serve import (
    PipelineBatcher,
    RenderRequest,
    ServeCluster,
    TraceCache,
    generate_traffic,
    simulate_service,
)

SWITCH = 2048  # AcceleratorConfig.reconfigure_cycles default


def tiny_program(pipeline):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=1e6, rows=1e3, in_width=32, out_width=4,
                      weight_bytes=1e4),
    )
    return program


def stub_cache(capacity=64):
    return TraceCache(capacity=capacity, compile_fn=lambda key: tiny_program(key[1]))


def request(i, pipeline="hashgrid", arrival=0.0, scene="lego", slo=0.05):
    return RenderRequest(
        request_id=i, scene=scene, pipeline=pipeline,
        width=64, height=64, arrival_s=arrival, slo_s=slo,
    )


class TestValidation:
    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            simulate_service([], ServeCluster(1), cache=stub_cache())

    def test_bad_request_rejected(self):
        with pytest.raises(ConfigError):
            request(0, arrival=-1.0)
        with pytest.raises(ConfigError):
            RenderRequest(0, "lego", "hashgrid", 0, 64, 0.0)

    def test_cluster_reuse_rejected(self):
        # Chips carry lifetime accounting; reusing a cluster would fold
        # one run's busy time and served counts into the next report.
        cluster = ServeCluster(1)
        trace = [request(0, "mesh", 0.0)]
        simulate_service(trace, cluster, cache=stub_cache())
        with pytest.raises(SimulationError, match="lifetime accounting"):
            simulate_service(trace, cluster, cache=stub_cache())


class TestBatchingAmortization:
    def test_only_first_of_batch_pays_the_switch(self):
        # Both requests queue while the chip warms up on request 0, so
        # they dispatch as one batch; the second rides the configuration.
        trace = [request(0, "gaussian", 0.0), request(1, "gaussian", 0.0)]
        report = simulate_service(trace, ServeCluster(1), cache=stub_cache())
        by_id = {r.request.request_id: r for r in report.responses}
        assert by_id[0].switch_cycles == SWITCH
        assert by_id[1].switch_cycles == 0.0
        assert by_id[0].batch_id == by_id[1].batch_id

    def test_pipeline_change_pays_the_switch(self):
        trace = [request(0, "gaussian", 0.0), request(1, "mesh", 0.0)]
        report = simulate_service(trace, ServeCluster(1), cache=stub_cache())
        assert all(r.switch_cycles == SWITCH for r in report.responses)

    def test_queue_builds_while_fleet_is_busy(self):
        # Requests 1..4 arrive while the single chip serves request 0
        # (its service time is microseconds); they must coalesce into
        # one batch rather than dispatch eagerly to the busy chip.
        trace = [request(0, "mesh", 0.0)] + [
            request(i, "hashgrid", 1e-8 * i) for i in range(1, 5)
        ]
        report = simulate_service(trace, ServeCluster(1), cache=stub_cache())
        assert max(report.batch_sizes) == 4
        assert report.mean_batch_size > 1.0

    def test_max_batch_caps_coalescing(self):
        trace = [request(0, "mesh", 0.0)] + [
            request(i, "hashgrid", 1e-6) for i in range(1, 8)
        ]
        report = simulate_service(
            trace, ServeCluster(1), cache=stub_cache(),
            batcher=PipelineBatcher(max_batch=3),
        )
        assert max(report.batch_sizes) == 3


class TestResponses:
    def test_every_request_is_served_exactly_once(self):
        trace = [request(i, "hashgrid", i * 1e-6) for i in range(20)]
        report = simulate_service(trace, ServeCluster(2), cache=stub_cache())
        assert sorted(r.request.request_id for r in report.responses) == list(range(20))

    def test_time_accounting_is_consistent(self):
        trace = [request(i, p, i * 1e-5)
                 for i, p in enumerate(("mesh", "mesh", "gaussian", "mesh"))]
        report = simulate_service(trace, ServeCluster(2), cache=stub_cache())
        for r in report.responses:
            assert r.start_s >= r.request.arrival_s
            assert r.finish_s > r.start_s
            assert r.latency_s == pytest.approx(r.queue_s + r.service_s)
            assert r.service_s >= r.cycles / 1e9

    def test_chip_serves_sequentially(self):
        trace = [request(i, "hashgrid", 0.0) for i in range(6)]
        report = simulate_service(trace, ServeCluster(1), cache=stub_cache())
        ordered = sorted(report.responses, key=lambda r: r.start_s)
        for before, after in zip(ordered, ordered[1:]):
            assert after.start_s >= before.finish_s - 1e-12

    def test_cache_hits_reported_per_response(self):
        trace = [request(i, "hashgrid", i * 1e-6) for i in range(4)]
        report = simulate_service(trace, ServeCluster(1), cache=stub_cache())
        hits = [r.cache_hit for r in sorted(report.responses,
                                            key=lambda r: r.start_s)]
        assert hits == [False, True, True, True]
        assert report.cache_hit_rate == pytest.approx(0.75)

    def test_response_to_dict_round_trips(self):
        trace = [request(0, "hashgrid", 0.0)]
        report = simulate_service(trace, ServeCluster(1), cache=stub_cache())
        record = report.responses[0].to_dict()
        assert record["slo_met"] is True
        assert record["pipeline"] == "hashgrid"
        assert record["latency_s"] == pytest.approx(
            report.responses[0].latency_s)


class TestServiceReport:
    def test_headline_metrics(self):
        trace = [request(i, "hashgrid", i * 1e-6, slo=1.0) for i in range(10)]
        report = simulate_service(trace, ServeCluster(2), cache=stub_cache())
        assert report.throughput_rps > 0
        assert report.latency_p(50) <= report.latency_p(95) <= report.latency_p(99)
        assert report.slo_attainment == 1.0
        assert 0.0 < report.mean_utilization <= 1.0
        payload = report.to_dict()
        assert payload["n_requests"] == 10
        assert payload["policy"] == "pipeline-affinity"

    def test_impossible_slo_is_missed(self):
        trace = [request(0, "hashgrid", 0.0, slo=1e-9)]
        report = simulate_service(trace, ServeCluster(1), cache=stub_cache())
        assert report.slo_attainment == 0.0

    def test_deterministic_replay(self):
        def run():
            trace = generate_traffic("mixed", n_requests=40, seed=7,
                                     resolution=(64, 64))
            report = simulate_service(trace, ServeCluster(2),
                                      cache=stub_cache())
            return [(r.request.request_id, r.chip_id, r.start_s, r.finish_s)
                    for r in report.responses]

        assert run() == run()


class TestTraffic:
    def test_seeded_generation_is_reproducible(self):
        a = generate_traffic("bursty", n_requests=30, seed=3)
        b = generate_traffic("bursty", n_requests=30, seed=3)
        assert a == b
        c = generate_traffic("bursty", n_requests=30, seed=4)
        assert a != c

    def test_arrivals_are_increasing(self):
        for pattern in ("steady", "bursty", "diurnal", "mixed"):
            trace = generate_traffic(pattern, n_requests=50, seed=0)
            arrivals = [r.arrival_s for r in trace]
            assert arrivals == sorted(arrivals), pattern
            assert all(t >= 0 for t in arrivals)

    def test_mixed_pattern_uses_every_pipeline(self):
        trace = generate_traffic("mixed", n_requests=60, seed=0)
        assert {r.pipeline for r in trace} == {"hashgrid", "gaussian", "mesh"}

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            generate_traffic("tsunami", n_requests=10)
