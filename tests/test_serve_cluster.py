"""Fleet state and sharding policies, including the affinity payoff."""

import pytest

from repro.compile.workloads import gemm_workload
from repro.core.config import AcceleratorConfig
from repro.core.microops import MicroOp, MicroOpProgram
from repro.errors import ConfigError
from repro.serve import (
    Batch,
    RenderRequest,
    ServeCluster,
    SHARDING_POLICIES,
    TraceCache,
    generate_traffic,
    simulate_service,
)


def tiny_program(pipeline):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=1e6, rows=1e3, in_width=32, out_width=4,
                      weight_bytes=1e4),
    )
    return program


def stub_cache():
    return TraceCache(capacity=64, compile_fn=lambda key: tiny_program(key[1]))


def batch_of(pipeline):
    return Batch(batch_id=0, pipeline=pipeline, requests=())


class TestClusterConstruction:
    def test_policy_registry(self):
        assert set(SHARDING_POLICIES) == {
            "round-robin", "least-loaded", "pipeline-affinity", "cost-aware"
        }

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            ServeCluster(2, policy="random")

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigError):
            ServeCluster(0)

    def test_chips_share_the_design_point(self):
        config = AcceleratorConfig().scaled(2, 2)
        cluster = ServeCluster(3, config=config)
        assert len(cluster) == 3
        assert all(chip.config == config for chip in cluster.chips)

    def test_heterogeneous_fleet_from_configs(self):
        configs = [AcceleratorConfig(), AcceleratorConfig().scaled(2, 2)]
        cluster = ServeCluster(configs=configs)
        assert len(cluster) == 2
        assert [c.config for c in cluster.chips] == configs
        assert cluster.chips[0].config.chip_cost_rate < \
            cluster.chips[1].config.chip_cost_rate

    def test_config_and_configs_are_mutually_exclusive(self):
        with pytest.raises(ConfigError):
            ServeCluster(config=AcceleratorConfig(),
                         configs=[AcceleratorConfig()])

    def test_parse_fleet_spec(self):
        from repro.serve import parse_fleet_spec

        configs = parse_fleet_spec("2*1x1,1*2x2")
        assert len(configs) == 3
        assert configs[0] == configs[1] == AcceleratorConfig()
        assert configs[2] == AcceleratorConfig().scaled(2, 2)
        for bad in ("", "1y1", "0*1x1", "ax1x1"):
            with pytest.raises(ConfigError):
                parse_fleet_spec(bad)


class TestElasticFleet:
    def test_add_chip_warms_up_before_accepting_work(self):
        cluster = ServeCluster(1)
        chip = cluster.add_chip(now=1.0, warmup_s=0.5)
        assert chip.chip_id == 1
        assert chip.added_at_s == 1.0
        assert chip.free_at_s == 1.5
        assert cluster.n_active == 2

    def test_add_chip_inherits_the_fleet_design_point(self):
        scaled = AcceleratorConfig().scaled(4, 4)
        cluster = ServeCluster(1, config=scaled)
        assert cluster.add_chip(now=0.0).config == scaled
        assert cluster.add_chip(AcceleratorConfig(), now=0.0).config == \
            AcceleratorConfig()

    def test_retire_excludes_chip_from_selection(self):
        cluster = ServeCluster(2, policy="least-loaded")
        cluster.retire_chip(cluster.chips[0], now=1.0)
        assert not cluster.chips[0].active
        assert cluster.select_chip(batch_of("mesh"), 2.0).chip_id == 1
        assert cluster.chips[0].alive_s(horizon_s=5.0) == 1.0
        assert cluster.chips[1].alive_s(horizon_s=5.0) == 5.0

    def test_cannot_retire_last_active_chip(self):
        cluster = ServeCluster(1)
        with pytest.raises(ConfigError):
            cluster.retire_chip(cluster.chips[0], now=0.0)

    def test_cost_accounting_tracks_rate_and_lifetime(self):
        big = AcceleratorConfig().scaled(2, 2)
        cluster = ServeCluster(configs=[AcceleratorConfig(), big])
        assert cluster.chips[0].cost_units(2.0) == pytest.approx(2.0)
        assert cluster.chips[1].cost_units(2.0) == pytest.approx(
            2.0 * big.chip_cost_rate)
        expected = (0.5 * big.n_pes / AcceleratorConfig().n_pes
                    + 0.5 * big.total_sram_bytes
                    / AcceleratorConfig().total_sram_bytes)
        assert big.chip_cost_rate == pytest.approx(expected)
        assert AcceleratorConfig().chip_cost_rate == pytest.approx(1.0)


class TestPolicies:
    def test_round_robin_rotates(self):
        cluster = ServeCluster(3, policy="round-robin")
        picks = [cluster.select_chip(batch_of("mesh"), 0.0).chip_id
                 for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_round_robin_skips_busy_chip_when_idle_exists(self):
        cluster = ServeCluster(3, policy="round-robin")
        cluster.chips[0].free_at_s = 5.0
        picks = [cluster.select_chip(batch_of("mesh"), 0.0).chip_id
                 for _ in range(4)]
        assert picks == [1, 2, 1, 2]

    def test_round_robin_queues_when_all_chips_busy(self):
        cluster = ServeCluster(2, policy="round-robin")
        for chip in cluster.chips:
            chip.free_at_s = 5.0
        picks = [cluster.select_chip(batch_of("mesh"), 0.0).chip_id
                 for _ in range(4)]
        assert picks == [0, 1, 0, 1]

    def test_least_loaded_picks_earliest_free(self):
        cluster = ServeCluster(3, policy="least-loaded")
        cluster.chips[0].free_at_s = 5.0
        cluster.chips[1].free_at_s = 1.0
        cluster.chips[2].free_at_s = 3.0
        assert cluster.select_chip(batch_of("mesh"), 0.0).chip_id == 1

    def test_affinity_prefers_warm_chip(self):
        cluster = ServeCluster(2, policy="pipeline-affinity")
        cluster.chips[1].configured_pipeline = "gaussian"
        # Chip 1 busy for less than one switch; worth the wait.
        cluster.chips[1].free_at_s = cluster.chips[1].switch_s / 2.0
        assert cluster.select_chip(batch_of("gaussian"), 0.0).chip_id == 1

    def test_affinity_abandons_overloaded_warm_chip(self):
        cluster = ServeCluster(2, policy="pipeline-affinity")
        cluster.chips[1].configured_pipeline = "gaussian"
        cluster.chips[1].free_at_s = cluster.chips[1].switch_s * 10.0
        assert cluster.select_chip(batch_of("gaussian"), 0.0).chip_id == 0

    def test_affinity_falls_back_when_no_chip_is_warm(self):
        cluster = ServeCluster(2, policy="pipeline-affinity")
        cluster.chips[0].free_at_s = 2.0
        assert cluster.select_chip(batch_of("mesh"), 0.0).chip_id == 1


def deadline_batch(pipeline="mesh", arrival=0.0, slo=0.05):
    request = RenderRequest(
        request_id=0, scene="lego", pipeline=pipeline,
        width=64, height=64, arrival_s=arrival, slo_s=slo,
    )
    return Batch(batch_id=0, pipeline=pipeline, requests=(request,))


class TestCostAwarePolicy:
    def heterogeneous(self):
        configs = [AcceleratorConfig().scaled(2, 2), AcceleratorConfig()]
        return ServeCluster(configs=configs, policy="cost-aware")

    def test_picks_cheapest_feasible_chip(self):
        cluster = self.heterogeneous()
        # Both idle and configured: chip 1 (baseline) is cheaper.
        for chip in cluster.chips:
            chip.configured_pipeline = "mesh"
        assert cluster.select_chip(deadline_batch(slo=1.0), 0.0).chip_id == 1

    def test_spills_to_expensive_chip_when_cheap_misses_deadline(self):
        cluster = self.heterogeneous()
        for chip in cluster.chips:
            chip.configured_pipeline = "mesh"
        cluster.chips[1].free_at_s = 0.1  # cheap chip busy past the SLO
        assert cluster.select_chip(deadline_batch(slo=0.05), 0.0).chip_id == 0

    def test_feasibility_projects_completion_not_just_start(self):
        cluster = self.heterogeneous()
        for chip in cluster.chips:
            chip.configured_pipeline = "mesh"
        # Cheap chip frees at 20 ms; with a 40 ms frame it finishes at
        # 60 ms — past the 50 ms SLO even though it *starts* in time.
        cluster.chips[1].free_at_s = 0.02
        batch = deadline_batch(slo=0.05)
        assert cluster.select_chip(batch, 0.0, est_service_s=0.04).chip_id == 0
        # Without the estimate (cold service) start-feasibility wins.
        assert cluster.select_chip(batch, 0.0).chip_id == 1

    def test_accounts_for_pipeline_switch_in_feasibility(self):
        cluster = self.heterogeneous()
        cluster.chips[0].configured_pipeline = "mesh"
        cluster.chips[1].configured_pipeline = "gaussian"  # must switch
        slo = cluster.chips[1].switch_s / 2.0  # switch alone blows it
        assert cluster.select_chip(deadline_batch(slo=slo), 0.0).chip_id == 0

    def test_degrades_to_least_loaded_when_nothing_is_feasible(self):
        cluster = self.heterogeneous()
        cluster.chips[0].free_at_s = 3.0
        cluster.chips[1].free_at_s = 7.0
        assert cluster.select_chip(deadline_batch(slo=0.01), 0.0).chip_id == 0

    def test_empty_batch_means_no_deadline(self):
        cluster = self.heterogeneous()
        assert cluster.select_chip(batch_of("mesh"), 0.0).chip_id == 1


class TestAffinityPayoff:
    def test_affinity_beats_round_robin_on_reconfig_cycles(self):
        """The acceptance claim: on a mixed-pipeline trace, affinity
        sharding spends measurably fewer reconfiguration cycles than
        round-robin, at no throughput cost."""
        trace = generate_traffic("mixed", n_requests=80, seed=0,
                                 rate_rps=300.0, resolution=(64, 64))
        reports = {}
        for policy in ("round-robin", "pipeline-affinity"):
            reports[policy] = simulate_service(
                trace, ServeCluster(4, policy=policy), cache=stub_cache(),
            )
        affinity = reports["pipeline-affinity"]
        baseline = reports["round-robin"]
        assert affinity.total_switch_cycles < 0.7 * baseline.total_switch_cycles
        assert affinity.total_reconfig_cycles < baseline.total_reconfig_cycles
        assert affinity.throughput_rps >= 0.95 * baseline.throughput_rps

    def test_accounting_totals_match_responses(self):
        trace = generate_traffic("mixed", n_requests=40, seed=1,
                                 resolution=(64, 64))
        report = simulate_service(trace, ServeCluster(2), cache=stub_cache())
        assert report.total_switch_cycles == pytest.approx(
            sum(r.switch_cycles for r in report.responses))
        assert report.total_frame_reconfig_cycles == pytest.approx(
            sum(r.frame_reconfig_cycles for r in report.responses))
        assert sum(c.requests_served for c in report.chips) == 40
        assert report.energy_per_request_j > 0
