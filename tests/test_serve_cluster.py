"""Fleet state and sharding policies, including the affinity payoff."""

import pytest

from repro.compile.workloads import gemm_workload
from repro.core.config import AcceleratorConfig
from repro.core.microops import MicroOp, MicroOpProgram
from repro.errors import ConfigError
from repro.serve import (
    Batch,
    ServeCluster,
    SHARDING_POLICIES,
    TraceCache,
    generate_traffic,
    simulate_service,
)


def tiny_program(pipeline):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=1e6, rows=1e3, in_width=32, out_width=4,
                      weight_bytes=1e4),
    )
    return program


def stub_cache():
    return TraceCache(capacity=64, compile_fn=lambda key: tiny_program(key[1]))


def batch_of(pipeline):
    return Batch(batch_id=0, pipeline=pipeline, requests=())


class TestClusterConstruction:
    def test_policy_registry(self):
        assert set(SHARDING_POLICIES) == {
            "round-robin", "least-loaded", "pipeline-affinity"
        }

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            ServeCluster(2, policy="random")

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigError):
            ServeCluster(0)

    def test_chips_share_the_design_point(self):
        config = AcceleratorConfig().scaled(2, 2)
        cluster = ServeCluster(3, config=config)
        assert len(cluster) == 3
        assert all(chip.config == config for chip in cluster.chips)


class TestPolicies:
    def test_round_robin_rotates(self):
        cluster = ServeCluster(3, policy="round-robin")
        picks = [cluster.select_chip(batch_of("mesh"), 0.0).chip_id
                 for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_picks_earliest_free(self):
        cluster = ServeCluster(3, policy="least-loaded")
        cluster.chips[0].free_at_s = 5.0
        cluster.chips[1].free_at_s = 1.0
        cluster.chips[2].free_at_s = 3.0
        assert cluster.select_chip(batch_of("mesh"), 0.0).chip_id == 1

    def test_affinity_prefers_warm_chip(self):
        cluster = ServeCluster(2, policy="pipeline-affinity")
        cluster.chips[1].configured_pipeline = "gaussian"
        # Chip 1 busy for less than one switch; worth the wait.
        cluster.chips[1].free_at_s = cluster.chips[1].switch_s / 2.0
        assert cluster.select_chip(batch_of("gaussian"), 0.0).chip_id == 1

    def test_affinity_abandons_overloaded_warm_chip(self):
        cluster = ServeCluster(2, policy="pipeline-affinity")
        cluster.chips[1].configured_pipeline = "gaussian"
        cluster.chips[1].free_at_s = cluster.chips[1].switch_s * 10.0
        assert cluster.select_chip(batch_of("gaussian"), 0.0).chip_id == 0

    def test_affinity_falls_back_when_no_chip_is_warm(self):
        cluster = ServeCluster(2, policy="pipeline-affinity")
        cluster.chips[0].free_at_s = 2.0
        assert cluster.select_chip(batch_of("mesh"), 0.0).chip_id == 1


class TestAffinityPayoff:
    def test_affinity_beats_round_robin_on_reconfig_cycles(self):
        """The acceptance claim: on a mixed-pipeline trace, affinity
        sharding spends measurably fewer reconfiguration cycles than
        round-robin, at no throughput cost."""
        trace = generate_traffic("mixed", n_requests=80, seed=0,
                                 rate_rps=300.0, resolution=(64, 64))
        reports = {}
        for policy in ("round-robin", "pipeline-affinity"):
            reports[policy] = simulate_service(
                trace, ServeCluster(4, policy=policy), cache=stub_cache(),
            )
        affinity = reports["pipeline-affinity"]
        baseline = reports["round-robin"]
        assert affinity.total_switch_cycles < 0.7 * baseline.total_switch_cycles
        assert affinity.total_reconfig_cycles < baseline.total_reconfig_cycles
        assert affinity.throughput_rps >= 0.95 * baseline.throughput_rps

    def test_accounting_totals_match_responses(self):
        trace = generate_traffic("mixed", n_requests=40, seed=1,
                                 resolution=(64, 64))
        report = simulate_service(trace, ServeCluster(2), cache=stub_cache())
        assert report.total_switch_cycles == pytest.approx(
            sum(r.switch_cycles for r in report.responses))
        assert report.total_frame_reconfig_cycles == pytest.approx(
            sum(r.frame_reconfig_cycles for r in report.responses))
        assert sum(c.requests_served for c in report.chips) == 40
        assert report.energy_per_request_j > 0
