"""Columnar-vs-scalar engine equivalence (the de-interpreting refactor).

The event engine carries two run loops: the scalar merged-stream loop
(the reference semantics, kept as the ``columnar=False`` escape hatch
and the fallback for stateful features) and the columnar fast path that
holds the pending set in NumPy columns. The contract is *byte
identity*: for every configuration the fast path accepts, its
``ServiceReport.to_dict()`` must serialize identically to the scalar
loop's — same floats, same ordering, same everything. This suite pins
that contract scenario by scenario — including the widened eligibility
matrix (strict-tier multi-tenant lanes, the deferred-replay observer
buffer, the vectorized chip-score lanes) — pins the eligibility gate
itself, pins the chaos/hedge/preempt fallbacks byte for byte, and pins
the :meth:`TraceCache.get_many` batched-lookup equivalence.
"""

import json
import random

import pytest

from repro.core.config import CompileLatencyModel
from repro.serve import (
    FaultPlan,
    ChipCrash,
    HedgePolicy,
    PipelineBatcher,
    ServeCluster,
    StragglerWindow,
    TenantClass,
    TraceCache,
    generate_tenant_traffic,
    generate_traffic,
    make_admission_policy,
    make_elastic_autoscaler,
    simulate_service,
)
from repro.serve.engine import EventEngine, TracePrefetcher
from tests.test_serve_invariants import stub_program

MODEL = CompileLatencyModel()


def stub_cache(capacity=64, model=None):
    return TraceCache(capacity=capacity,
                      compile_fn=lambda key: stub_program(key[1]),
                      latency_model=model)


def trace(pattern="bursty", n=160, rate=400.0, seed=3,
          scenes=("lego", "room"), slo=0.02):
    return generate_traffic(pattern, n_requests=n, rate_rps=rate, seed=seed,
                            scenes=scenes, resolution=(64, 64), slo_s=slo)


def tenant_trace(mix=None, n=160, rate=600.0, seed=3, slo=0.02):
    """A strict-tier multi-tenant trace (no weights — tiers only)."""
    if mix is None:
        mix = [(TenantClass("premium", tier=0), 0.3),
               (TenantClass("economy", slo_multiplier=2.0, tier=1), 0.7)]
    return generate_tenant_traffic(
        mix, pattern="bursty", n_requests=n, rate_rps=rate, seed=seed,
        scenes=("lego", "room"), resolution=(64, 64), slo_s=slo)


def canon(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


def full_observer():
    from repro.obs import FlightRecorder, MetricsRegistry, Observer, Tracer

    return Observer(tracer=Tracer(), metrics=MetricsRegistry(),
                    flight=FlightRecorder())


def canon_observer(obs) -> str:
    """Every observer artifact, serialized: trace events, the metric
    registry (cumulative values and the snapshot timeline), and the
    flight recorder's frozen dumps."""
    return json.dumps({
        "tracer": [list(event) for event in obs.tracer.events()],
        "metrics": obs.metrics.flatten(),
        "timeline": obs.metrics.timeline,
        "flight": obs.flight.to_dict(),
    }, sort_keys=True, default=repr)


def run_both(requests, chips=2, **kwargs):
    """The same configuration through both loops; returns both reports."""
    reports = [
        simulate_service(requests, ServeCluster(chips), cache=stub_cache(),
                         batcher=PipelineBatcher(), columnar=flag, **kwargs)
        for flag in (True, False)
    ]
    return reports[0], reports[1]


class TestByteIdentity:
    """Every eligible scenario: columnar == scalar, byte for byte."""

    @pytest.mark.parametrize("pattern", ["steady", "bursty", "diurnal"])
    def test_bare_patterns(self, pattern):
        columnar, scalar = run_both(trace(pattern))
        assert canon(columnar) == canon(scalar)

    def test_slo_shed_admission(self):
        # A single chip against a tight 2 ms SLO: projections blow the
        # deadline, so the policy actually sheds on both paths.
        columnar, scalar = run_both(
            trace(rate=4000.0, slo=0.002), chips=1,
            admission=make_admission_policy("slo-shed"))
        assert columnar.n_shed > 0
        assert canon(columnar) == canon(scalar)

    def test_tail_drop_admission(self):
        from repro.serve.admission import TailDrop

        columnar, scalar = run_both(
            trace(rate=4000.0, slo=0.002), chips=1,
            admission=TailDrop(max_queue=4))
        assert columnar.n_shed > 0
        assert canon(columnar) == canon(scalar)

    def test_sync_visible_compile(self):
        # compile_workers=0 with a latency model stalls the chip on
        # every miss — still columnar-eligible (no worker pool events).
        columnar, scalar = run_both(trace(), compile_latency=MODEL)
        assert any(r.compile_origin == "sync" for r in columnar.responses)
        assert canon(columnar) == canon(scalar)

    def test_large_ingest_windows(self):
        # A miss storm at high rate accumulates ingest windows past the
        # NumPy group-fill threshold (64), exercising the vectorized
        # branch rather than the per-request loop.
        storm = trace(n=400, rate=8000.0, seed=7,
                      scenes=tuple(f"s{i}" for i in range(10)))
        columnar, scalar = run_both(storm)
        assert canon(columnar) == canon(scalar)

    def test_single_request(self):
        columnar, scalar = run_both(trace(n=1))
        assert canon(columnar) == canon(scalar)

    def test_strict_tier_multi_tenant(self):
        columnar, scalar = run_both(tenant_trace())
        assert canon(columnar) == canon(scalar)

    def test_three_tier_traffic(self):
        mix = [(TenantClass("gold", tier=0), 0.2),
               (TenantClass("silver", slo_multiplier=1.5, tier=1), 0.3),
               (TenantClass("bronze", slo_multiplier=3.0, tier=2), 0.5)]
        columnar, scalar = run_both(tenant_trace(mix=mix, n=240, rate=1500.0))
        assert canon(columnar) == canon(scalar)

    def test_tiered_with_slo_shed(self):
        columnar, scalar = run_both(
            tenant_trace(rate=6000.0, slo=0.002), chips=1,
            admission=make_admission_policy("slo-shed"))
        assert columnar.n_shed > 0
        assert canon(columnar) == canon(scalar)

    @pytest.mark.parametrize("policy", ["round-robin", "least-loaded",
                                        "pipeline-affinity", "cost-aware"])
    def test_sharding_policies(self, policy):
        # Three chips so the score lanes actually discriminate; the
        # round-robin arm pins the stateful-closure fallback inside the
        # columnar loop.
        reports = [
            simulate_service(trace(n=240, rate=2500.0),
                             ServeCluster(3, policy=policy),
                             cache=stub_cache(), batcher=PipelineBatcher(),
                             columnar=flag)
            for flag in (True, False)
        ]
        assert canon(reports[0]) == canon(reports[1])

    def test_eviction_storm(self):
        # A 3-entry cache against 8 scenes: evictions (and price-memo
        # invalidations) on nearly every window.
        storm = trace(n=300, rate=5000.0, seed=9,
                      scenes=tuple(f"s{i}" for i in range(8)))
        reports = [
            simulate_service(storm, ServeCluster(2),
                             cache=stub_cache(capacity=3, model=MODEL),
                             batcher=PipelineBatcher(), columnar=flag)
            for flag in (True, False)
        ]
        assert reports[0].cache_stats["evictions"] > 0
        assert canon(reports[0]) == canon(reports[1])

    def test_observer_artifacts_identical(self):
        # Full observability sink (tracer + metrics + flight recorder):
        # the deferred-replay buffer must reproduce every artifact the
        # scalar loop's inline hooks would have produced — trace events,
        # counter values, the snapshot timeline, flight dumps.
        results = {}
        for flag in (True, False):
            obs = full_observer()
            report = simulate_service(
                trace(n=200, rate=3000.0), ServeCluster(2),
                cache=stub_cache(), batcher=PipelineBatcher(),
                observer=obs, compile_latency=MODEL, columnar=flag)
            results[flag] = (canon(report), canon_observer(obs))
        assert results[True] == results[False]

    def test_observer_with_shedding_identical(self):
        # SHED/ADMIT replay rows plus flight-recorder shed-burst
        # triggers, on a tiered trace.
        results = {}
        for flag in (True, False):
            obs = full_observer()
            report = simulate_service(
                tenant_trace(rate=6000.0, slo=0.002), ServeCluster(1),
                cache=stub_cache(), batcher=PipelineBatcher(),
                admission=make_admission_policy("slo-shed"),
                observer=obs, columnar=flag)
            results[flag] = (report.n_shed, canon(report),
                             canon_observer(obs))
        assert results[True][0] > 0
        assert results[True] == results[False]

    def test_escape_hatch_is_default_off_path(self):
        # simulate_service(columnar=False) must take the scalar loop
        # even for an eligible configuration (pinned via the engine).
        requests = trace(n=16)
        assert EventEngine(requests, cache=stub_cache())._columnar
        assert not EventEngine(requests, cache=stub_cache(),
                               columnar=False)._columnar


class TestEligibilityGate:
    """The fast path only engages when it can reproduce the scalar
    schedule bit for bit; every stateful feature must disqualify it."""

    def engine(self, **kwargs):
        return EventEngine(trace(n=16), cache=stub_cache(), **kwargs)

    def test_bare_is_columnar(self):
        assert self.engine()._columnar

    def test_non_rewriting_admission_is_columnar(self):
        assert self.engine(
            admission=make_admission_policy("slo-shed"))._columnar

    def test_downgrade_admission_falls_back(self):
        # Downgrade rewrites requests (may_degrade=True): scalar only.
        assert not self.engine(
            admission=make_admission_policy("downgrade"))._columnar

    def test_unknown_admission_object_falls_back(self):
        # Duck-typed policies without the may_degrade attribute are
        # conservatively assumed to rewrite.
        class Mystery:
            def admit(self, request, now, projected, est, depth):
                return request

        assert not self.engine(admission=Mystery())._columnar

    def test_autoscaler_falls_back(self):
        assert not self.engine(
            autoscaler=make_elastic_autoscaler())._columnar

    def test_async_compile_falls_back(self):
        assert not self.engine(compile_workers=1)._columnar

    def test_prefetch_falls_back(self):
        assert not self.engine(compile_workers=1,
                               prefetcher=TracePrefetcher())._columnar

    def test_preempt_falls_back(self):
        assert not self.engine(preempt=True)._columnar

    def test_faults_fall_back(self):
        plan = FaultPlan(crashes=[ChipCrash(0, 0.01, None)])
        assert not self.engine(faults=plan)._columnar

    def test_hedge_falls_back(self):
        assert not self.engine(hedge=HedgePolicy())._columnar

    def test_observer_is_columnar(self):
        # Observers ride the deferred-replay buffer now: full tracing no
        # longer disqualifies the fast path.
        from repro.obs import Observer, Tracer

        assert self.engine(observer=Observer(tracer=Tracer()))._columnar

    def test_multi_tier_is_columnar(self):
        # Strict-tier multi-tenant (no weights, no preempt) runs on the
        # per-tier pending lanes.
        engine = EventEngine(tenant_trace(n=16), cache=stub_cache())
        assert engine._columnar

    def test_weighted_admission_falls_back(self):
        from repro.serve import TenantClass

        mix = [(TenantClass("a", weight=2.0), 0.5),
               (TenantClass("b", tier=1), 0.5)]
        requests = generate_tenant_traffic(
            mix, pattern="bursty", n_requests=16, rate_rps=400.0, seed=3,
            scenes=("lego",), resolution=(64, 64), slo_s=0.02)
        engine = EventEngine(requests, cache=stub_cache(),
                             admission=make_admission_policy("weighted"))
        assert not engine._columnar


class TestFallbackStillMatches:
    """columnar=True on an ineligible config silently takes the scalar
    loop — the kwarg must be a no-op there, not a behavior change."""

    def test_preempt_mode_identical_across_flag(self):
        mix = [(TenantClass("premium", weight=4.0), 0.25),
               (TenantClass("economy", slo_multiplier=2.0, tier=1), 0.75)]
        requests = generate_tenant_traffic(
            mix, pattern="bursty", n_requests=80, rate_rps=600.0, seed=3,
            scenes=("lego", "room"), resolution=(64, 64), slo_s=0.02)
        reports = [
            simulate_service(
                requests, ServeCluster(2), cache=stub_cache(),
                batcher=PipelineBatcher(),
                admission=make_admission_policy("weighted"),
                preempt=True, columnar=flag)
            for flag in (True, False)
        ]
        assert canon(reports[0]) == canon(reports[1])

    def test_chaos_forces_scalar_and_matches(self):
        # A FaultPlan must force the scalar loop (crash/recover events
        # are heap-driven), and columnar=True must be a silent no-op.
        plan = FaultPlan(
            crashes=[ChipCrash(0, 0.005, 0.02), ChipCrash(2, 0.012, None)],
            stragglers=[StragglerWindow(1, 0.0, 0.06, 3.0)])
        requests = trace(n=160, rate=2500.0)
        assert not EventEngine(requests, cache=stub_cache(),
                               faults=plan)._columnar
        reports = [
            simulate_service(requests, ServeCluster(3), cache=stub_cache(),
                             batcher=PipelineBatcher(), faults=plan,
                             columnar=flag)
            for flag in (True, False)
        ]
        assert canon(reports[0]) == canon(reports[1])

    def test_hedge_forces_scalar_and_matches(self):
        hedge = HedgePolicy(quantile=0.5, multiplier=0.5,
                            min_samples=4, window=32)
        requests = trace(n=160, rate=4000.0)
        assert not EventEngine(requests, cache=stub_cache(),
                               hedge=hedge)._columnar
        reports = [
            simulate_service(requests, ServeCluster(2), cache=stub_cache(),
                             batcher=PipelineBatcher(), hedge=hedge,
                             columnar=flag)
            for flag in (True, False)
        ]
        assert canon(reports[0]) == canon(reports[1])

    def test_chaos_plus_hedge_identical_across_flag(self):
        # The full chaos-golden shape: faults and hedging together.
        plan = FaultPlan(
            crashes=[ChipCrash(1, 0.008, 0.03)],
            stragglers=[StragglerWindow(0, 0.01, 0.05, 2.5)])
        hedge = HedgePolicy(quantile=0.5, multiplier=0.5,
                            min_samples=4, window=32)
        requests = trace(n=160, rate=4000.0)
        reports = [
            simulate_service(requests, ServeCluster(3), cache=stub_cache(),
                             batcher=PipelineBatcher(), faults=plan,
                             hedge=hedge, columnar=flag)
            for flag in (True, False)
        ]
        assert canon(reports[0]) == canon(reports[1])


class TestGetMany:
    """:meth:`TraceCache.get_many` vs a loop of :meth:`TraceCache.get`
    calls on a twin cache — randomized windows, every capacity."""

    UNIVERSE = [(f"scene{i}", pipe, 64, 64)
                for i in range(6)
                for pipe in ("hashgrid", "gaussian", "mesh")]

    @pytest.mark.parametrize("seed", range(8))
    def test_randomized_lru_equivalence(self, seed):
        rng = random.Random(seed)
        capacity = rng.randint(1, 6)
        batched = stub_cache(capacity=capacity, model=MODEL)
        looped = stub_cache(capacity=capacity, model=MODEL)
        for _ in range(15):
            window = [rng.choice(self.UNIVERSE)
                      for _ in range(rng.randint(1, 10))]
            got = batched.get_many(window)
            assert len(got) == len(window)
            for key, (_, hit, cost, n_evicted) in zip(window, got):
                evicted0 = looped.stats.evictions
                _, ref_hit = looped.get(key)
                assert hit == ref_hit
                # Both a miss's charge and a hit's credit equal the
                # key's recorded simulated compile cost.
                assert cost == looped.compile_cost_s(key)
                assert n_evicted == looped.stats.evictions - evicted0
            # LRU order (and therefore every future eviction victim)
            # must agree after every window.
            assert batched.keys == looped.keys
        assert batched.stats.to_dict() == looped.stats.to_dict()
        assert batched.hits_by_key == looped.hits_by_key

    def test_repeated_hits_single_touch_order(self):
        # A key hit k times in one window lands exactly where k
        # sequential get() calls would have left it: most recent at the
        # tail, ordered by *last* occurrence.
        cache = stub_cache(capacity=4)
        a, b, c = [("s", p, 64, 64) for p in ("p0", "p1", "p2")]
        cache.get_many([a, b, c])
        cache.get_many([a, a, b, a])
        assert cache.keys == (c, b, a)

    def test_empty_window(self):
        cache = stub_cache()
        assert cache.get_many([]) == []
        assert cache.stats.lookups == 0


class TestPriceMemoEviction:
    """Satellite bugfix: an eviction must drop the evicted trace's rows
    from every chip's price memo — a recompile re-prices through the
    cost table instead of riding a row memoized for the dead program."""

    def requests(self):
        return generate_traffic("steady", n_requests=40, rate_rps=1500.0,
                                seed=3, scenes=("a", "b"),
                                pipelines=("hashgrid",),
                                resolution=(64, 64), slo_s=0.05)

    def run_engine(self, columnar):
        engine = EventEngine(self.requests(), ServeCluster(1),
                             cache=stub_cache(capacity=1, model=MODEL),
                             batcher=PipelineBatcher(max_batch=1),
                             columnar=columnar)
        report = engine.run()
        return engine, report

    @pytest.mark.parametrize("columnar", [True, False])
    def test_one_entry_cache_alternating_traces(self, columnar):
        engine, report = self.run_engine(columnar)
        assert engine._columnar == columnar
        assert report.cache_stats["evictions"] > 0
        # The memo may only hold rows for traces still resident: with a
        # 1-entry cache alternating two keys, at most one row per chip.
        for memo in engine._price_memo.values():
            assert set(memo) <= set(engine.cache.keys)
            assert len(memo) <= 1

    def test_reports_match_across_loops(self):
        _, columnar = self.run_engine(True)
        _, scalar = self.run_engine(False)
        assert canon(columnar) == canon(scalar)


class TestRandomizedMultiTenantEquivalence:
    """Randomized tiered traffic × admission mode (preempt off):
    columnar vs scalar reports must be byte-equal whether the gate
    engages (bare, slo-shed) or silently falls back (weighted)."""

    @pytest.mark.parametrize("admission", [None, "slo-shed", "weighted"])
    @pytest.mark.parametrize("seed", [5, 11, 23])
    def test_reports_byte_identical(self, seed, admission):
        offset = {None: 0, "slo-shed": 1, "weighted": 2}[admission]
        rng = random.Random(101 * seed + offset)
        n_tiers = rng.randint(2, 3)
        share = 1.0 / n_tiers
        mix = [(TenantClass(f"t{tier}",
                            slo_multiplier=1.0 + tier * rng.uniform(0.5, 1.5),
                            weight=float(n_tiers - tier), tier=tier), share)
               for tier in range(n_tiers)]
        requests = generate_tenant_traffic(
            mix, pattern=rng.choice(["steady", "bursty"]),
            n_requests=rng.randint(80, 200),
            rate_rps=rng.uniform(500.0, 4000.0), seed=seed,
            scenes=("lego", "room"), resolution=(64, 64), slo_s=0.02)
        chips = rng.randint(1, 3)
        reports = [
            simulate_service(
                requests, ServeCluster(chips), cache=stub_cache(),
                batcher=PipelineBatcher(),
                admission=(None if admission is None
                           else make_admission_policy(admission)),
                columnar=flag)
            for flag in (True, False)
        ]
        assert canon(reports[0]) == canon(reports[1])
