"""Columnar-vs-scalar engine equivalence (the de-interpreting refactor).

The event engine carries two run loops: the scalar merged-stream loop
(the reference semantics, kept as the ``columnar=False`` escape hatch
and the fallback for stateful features) and the columnar fast path that
holds the pending set in NumPy columns. The contract is *byte
identity*: for every configuration the fast path accepts, its
``ServiceReport.to_dict()`` must serialize identically to the scalar
loop's — same floats, same ordering, same everything. This suite pins
that contract scenario by scenario, pins the eligibility gate itself,
and pins the escape hatch.
"""

import json

import pytest

from repro.core.config import CompileLatencyModel
from repro.serve import (
    FaultPlan,
    ChipCrash,
    HedgePolicy,
    PipelineBatcher,
    ServeCluster,
    TenantClass,
    TraceCache,
    generate_tenant_traffic,
    generate_traffic,
    make_admission_policy,
    make_elastic_autoscaler,
    simulate_service,
)
from repro.serve.engine import EventEngine, TracePrefetcher
from tests.test_serve_invariants import stub_program

MODEL = CompileLatencyModel()


def stub_cache(capacity=64, model=None):
    return TraceCache(capacity=capacity,
                      compile_fn=lambda key: stub_program(key[1]),
                      latency_model=model)


def trace(pattern="bursty", n=160, rate=400.0, seed=3,
          scenes=("lego", "room"), slo=0.02):
    return generate_traffic(pattern, n_requests=n, rate_rps=rate, seed=seed,
                            scenes=scenes, resolution=(64, 64), slo_s=slo)


def canon(report) -> str:
    return json.dumps(report.to_dict(), sort_keys=True)


def run_both(requests, chips=2, **kwargs):
    """The same configuration through both loops; returns both reports."""
    reports = [
        simulate_service(requests, ServeCluster(chips), cache=stub_cache(),
                         batcher=PipelineBatcher(), columnar=flag, **kwargs)
        for flag in (True, False)
    ]
    return reports[0], reports[1]


class TestByteIdentity:
    """Every eligible scenario: columnar == scalar, byte for byte."""

    @pytest.mark.parametrize("pattern", ["steady", "bursty", "diurnal"])
    def test_bare_patterns(self, pattern):
        columnar, scalar = run_both(trace(pattern))
        assert canon(columnar) == canon(scalar)

    def test_slo_shed_admission(self):
        # A single chip against a tight 2 ms SLO: projections blow the
        # deadline, so the policy actually sheds on both paths.
        columnar, scalar = run_both(
            trace(rate=4000.0, slo=0.002), chips=1,
            admission=make_admission_policy("slo-shed"))
        assert columnar.n_shed > 0
        assert canon(columnar) == canon(scalar)

    def test_tail_drop_admission(self):
        from repro.serve.admission import TailDrop

        columnar, scalar = run_both(
            trace(rate=4000.0, slo=0.002), chips=1,
            admission=TailDrop(max_queue=4))
        assert columnar.n_shed > 0
        assert canon(columnar) == canon(scalar)

    def test_sync_visible_compile(self):
        # compile_workers=0 with a latency model stalls the chip on
        # every miss — still columnar-eligible (no worker pool events).
        columnar, scalar = run_both(trace(), compile_latency=MODEL)
        assert any(r.compile_origin == "sync" for r in columnar.responses)
        assert canon(columnar) == canon(scalar)

    def test_large_ingest_windows(self):
        # A miss storm at high rate accumulates ingest windows past the
        # NumPy group-fill threshold (64), exercising the vectorized
        # branch rather than the per-request loop.
        storm = trace(n=400, rate=8000.0, seed=7,
                      scenes=tuple(f"s{i}" for i in range(10)))
        columnar, scalar = run_both(storm)
        assert canon(columnar) == canon(scalar)

    def test_single_request(self):
        columnar, scalar = run_both(trace(n=1))
        assert canon(columnar) == canon(scalar)

    def test_escape_hatch_is_default_off_path(self):
        # simulate_service(columnar=False) must take the scalar loop
        # even for an eligible configuration (pinned via the engine).
        requests = trace(n=16)
        assert EventEngine(requests, cache=stub_cache())._columnar
        assert not EventEngine(requests, cache=stub_cache(),
                               columnar=False)._columnar


class TestEligibilityGate:
    """The fast path only engages when it can reproduce the scalar
    schedule bit for bit; every stateful feature must disqualify it."""

    def engine(self, **kwargs):
        return EventEngine(trace(n=16), cache=stub_cache(), **kwargs)

    def test_bare_is_columnar(self):
        assert self.engine()._columnar

    def test_non_rewriting_admission_is_columnar(self):
        assert self.engine(
            admission=make_admission_policy("slo-shed"))._columnar

    def test_downgrade_admission_falls_back(self):
        # Downgrade rewrites requests (may_degrade=True): scalar only.
        assert not self.engine(
            admission=make_admission_policy("downgrade"))._columnar

    def test_unknown_admission_object_falls_back(self):
        # Duck-typed policies without the may_degrade attribute are
        # conservatively assumed to rewrite.
        class Mystery:
            def admit(self, request, now, projected, est, depth):
                return request

        assert not self.engine(admission=Mystery())._columnar

    def test_autoscaler_falls_back(self):
        assert not self.engine(
            autoscaler=make_elastic_autoscaler())._columnar

    def test_async_compile_falls_back(self):
        assert not self.engine(compile_workers=1)._columnar

    def test_prefetch_falls_back(self):
        assert not self.engine(compile_workers=1,
                               prefetcher=TracePrefetcher())._columnar

    def test_preempt_falls_back(self):
        assert not self.engine(preempt=True)._columnar

    def test_faults_fall_back(self):
        plan = FaultPlan(crashes=[ChipCrash(0, 0.01, None)])
        assert not self.engine(faults=plan)._columnar

    def test_hedge_falls_back(self):
        assert not self.engine(hedge=HedgePolicy())._columnar

    def test_observer_falls_back(self):
        from repro.obs import Observer, Tracer

        assert not self.engine(observer=Observer(tracer=Tracer()))._columnar

    def test_weighted_admission_falls_back(self):
        from repro.serve import TenantClass

        mix = [(TenantClass("a", weight=2.0), 0.5),
               (TenantClass("b", tier=1), 0.5)]
        requests = generate_tenant_traffic(
            mix, pattern="bursty", n_requests=16, rate_rps=400.0, seed=3,
            scenes=("lego",), resolution=(64, 64), slo_s=0.02)
        engine = EventEngine(requests, cache=stub_cache(),
                             admission=make_admission_policy("weighted"))
        assert not engine._columnar


class TestFallbackStillMatches:
    """columnar=True on an ineligible config silently takes the scalar
    loop — the kwarg must be a no-op there, not a behavior change."""

    def test_preempt_mode_identical_across_flag(self):
        mix = [(TenantClass("premium", weight=4.0), 0.25),
               (TenantClass("economy", slo_multiplier=2.0, tier=1), 0.75)]
        requests = generate_tenant_traffic(
            mix, pattern="bursty", n_requests=80, rate_rps=600.0, seed=3,
            scenes=("lego", "room"), resolution=(64, 64), slo_s=0.02)
        reports = [
            simulate_service(
                requests, ServeCluster(2), cache=stub_cache(),
                batcher=PipelineBatcher(),
                admission=make_admission_policy("weighted"),
                preempt=True, columnar=flag)
            for flag in (True, False)
        ]
        assert canon(reports[0]) == canon(reports[1])
