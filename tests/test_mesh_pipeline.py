"""Tests for the mesh pipeline: geometry, rasterizer, build, rendering."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.renderers.mesh import (
    MeshRenderer,
    TriangleMesh,
    box_mesh,
    cylinder_mesh,
    plane_mesh,
    rasterize,
    sphere_mesh,
    torus_mesh,
)
from repro.scenes import Camera, look_at


class TestGeometry:
    def test_triangle_mesh_validation(self):
        with pytest.raises(SceneError):
            TriangleMesh(np.zeros((3, 2)), np.zeros((1, 3), dtype=int))
        with pytest.raises(SceneError):
            TriangleMesh(np.zeros((3, 3)), np.array([[0, 1, 5]]))

    def test_sphere_vertices_on_surface(self):
        mesh = sphere_mesh((1, 2, 3), radius=0.7, segments=8)
        dists = np.linalg.norm(mesh.vertices - np.array([1, 2, 3]), axis=1)
        assert np.allclose(dists, 0.7, atol=1e-9)

    def test_sphere_total_area_close_to_analytic(self):
        mesh = sphere_mesh((0, 0, 0), radius=1.0, segments=24)
        assert np.isclose(mesh.face_areas().sum(), 4 * np.pi, rtol=0.05)

    def test_box_face_count_scales_with_segments(self):
        assert box_mesh((0, 0, 0), (1, 1, 1), segments=1).num_faces == 12
        assert box_mesh((0, 0, 0), (1, 1, 1), segments=2).num_faces == 48

    def test_cylinder_and_torus_build(self):
        cyl = cylinder_mesh((0, 0, 0), 0.5, 1.0, segments=10)
        tor = torus_mesh((0, 0, 0), 0.6, 0.2, segments=10)
        assert cyl.num_faces == 10 * 4
        assert tor.num_faces == 10 * 10 * 2

    def test_plane_is_flat(self):
        plane = plane_mesh((0, 0, -1.0), half_size=2.0, segments=3)
        assert np.allclose(plane.vertices[:, 2], -1.0)

    def test_merge_tracks_owner(self):
        merged, owner = TriangleMesh.merge(
            [sphere_mesh((0, 0, 0), 1, 6), box_mesh((2, 0, 0), (1, 1, 1))]
        )
        assert merged.num_faces == len(owner)
        assert set(np.unique(owner)) == {0, 1}
        assert merged.faces.max() < merged.num_vertices

    def test_minimum_segments_enforced(self):
        with pytest.raises(SceneError):
            sphere_mesh((0, 0, 0), 1, segments=2)


class TestRasterizer:
    def _camera(self, size=32):
        return Camera(size, size, pose=look_at(np.array([0, -3.0, 0]), np.zeros(3)))

    def test_single_triangle_covers_center(self):
        tri = TriangleMesh(
            np.array([[-1, 0, -1], [1, 0, -1], [0, 0, 1.5]], dtype=float),
            np.array([[0, 1, 2]]),
        )
        out = rasterize(tri, self._camera())
        assert out.face_id[16, 16] == 0
        assert np.isclose(out.depth[16, 16], 3.0, rtol=0.05)

    def test_barycentrics_in_simplex(self):
        tri = TriangleMesh(
            np.array([[-1, 0, -1], [1, 0, -1], [0, 0, 1.5]], dtype=float),
            np.array([[0, 1, 2]]),
        )
        out = rasterize(tri, self._camera())
        covered = out.face_id >= 0
        b1 = out.bary[covered, 0]
        b2 = out.bary[covered, 1]
        assert np.all(b1 >= -1e-9) and np.all(b2 >= -1e-9)
        assert np.all(b1 + b2 <= 1.0 + 1e-6)

    def test_zbuffer_keeps_nearest(self):
        near = np.array([[-1, -1.0, -1], [1, -1.0, -1], [0, -1.0, 1.5]])
        far = np.array([[-1, 1.0, -1], [1, 1.0, -1], [0, 1.0, 1.5]])
        mesh = TriangleMesh(np.vstack([near, far]), np.array([[0, 1, 2], [3, 4, 5]]))
        out = rasterize(mesh, self._camera())
        assert out.face_id[16, 16] == 0  # the nearer triangle wins

    def test_behind_camera_culled(self):
        tri = TriangleMesh(
            np.array([[-1, -5.0, -1], [1, -5.0, -1], [0, -5.0, 1]], dtype=float),
            np.array([[0, 1, 2]]),
        )
        out = rasterize(tri, self._camera())
        assert out.tris_projected == 0
        assert np.all(out.face_id == -1)

    def test_offscreen_culled_without_tests(self):
        tri = TriangleMesh(
            np.array([[100, 0, 100], [101, 0, 100], [100, 0, 101]], dtype=float),
            np.array([[0, 1, 2]]),
        )
        out = rasterize(tri, self._camera())
        assert out.tri_tests == 0

    def test_tri_tests_at_least_covered(self):
        tri = TriangleMesh(
            np.array([[-1, 0, -1], [1, 0, -1], [0, 0, 1.5]], dtype=float),
            np.array([[0, 1, 2]]),
        )
        out = rasterize(tri, self._camera())
        assert out.tri_tests >= int((out.face_id >= 0).sum())


class TestMeshModelAndRenderer:
    def test_storage_accounts_all_parts(self, mesh_model):
        expected_min = mesh_model.mesh.num_faces * 3 * 4
        assert mesh_model.storage_bytes() > expected_min

    def test_fetch_features_shape_and_range(self, mesh_model, rng):
        n = 32
        faces = rng.integers(0, mesh_model.mesh.num_faces, n)
        b1 = rng.uniform(0, 1, n)
        b2 = rng.uniform(0, 1, n) * (1 - b1)
        feats = mesh_model.fetch_features(faces, b1, b2)
        assert feats.shape == (n, mesh_model.feature_channels)
        assert feats.min() >= -1e-9 and feats.max() <= 1.0 + 1e-9

    def test_render_image_and_stats(self, mesh_model, lego_field, lego_camera):
        renderer = MeshRenderer(mesh_model, lego_field)
        image, stats = renderer.render(lego_camera)
        assert image.shape == (32, 32, 3)
        assert stats.get("pixels") == 32 * 32
        assert stats.get("tris_projected") > 0
        assert stats.get("mlp_macs") > 0
        # texture fetches are 4 per shaded pixel (bilinear corners)
        assert stats.get("texture_fetches") == 4 * stats.get("mlp_inputs")

    def test_background_fills_empty_pixels(self, mesh_model, lego_field):
        # Camera looking away from the scene: all background (white).
        cam = Camera(16, 16, pose=look_at(np.array([0, -8.0, 0]), (0, -16.0, 0)))
        renderer = MeshRenderer(mesh_model, lego_field)
        image, stats = renderer.render(cam)
        assert np.allclose(image, 1.0, atol=1e-6)
        assert stats.get("mlp_inputs", 0) == 0
