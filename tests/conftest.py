"""Shared fixtures: small, session-cached scenes and representations.

Builders run with reduced budgets so the whole suite stays fast; the
full-fidelity configurations are exercised by the benchmarks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.renderers.gaussian import build_gaussian_model
from repro.renderers.hashgrid import build_hashgrid_model
from repro.renderers.lowrank import build_triplane_model
from repro.renderers.mesh import build_mesh_model
from repro.renderers.nerf import build_kilonerf_model
from repro.scenes import Camera, get_scene, orbit_poses


@pytest.fixture(scope="session")
def lego_field():
    return get_scene("lego").field()


@pytest.fixture(scope="session")
def room_field():
    return get_scene("room").field()


@pytest.fixture(scope="session")
def lego_camera():
    return Camera(32, 32, pose=orbit_poses(3.0, 4)[0])


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)


@pytest.fixture(scope="session")
def mesh_model(lego_field):
    return build_mesh_model(lego_field, quality=0.6, train_steps=40)


@pytest.fixture(scope="session")
def kilonerf_model(lego_field):
    return build_kilonerf_model(
        lego_field, grid_size=3, hidden=12, train_steps=60, samples_per_ray=48
    )


@pytest.fixture(scope="session")
def triplane_model(lego_field):
    return build_triplane_model(
        lego_field,
        plane_resolution=32,
        grid_resolution=8,
        target_resolution=32,
        train_steps=60,
        samples_per_ray=48,
    )


@pytest.fixture(scope="session")
def hashgrid_model(lego_field):
    return build_hashgrid_model(
        lego_field,
        n_levels=6,
        log2_table_size=12,
        train_steps=80,
        samples_per_ray=48,
    )


@pytest.fixture(scope="session")
def gaussian_model(lego_field):
    return build_gaussian_model(lego_field, n_gaussians=1500)
