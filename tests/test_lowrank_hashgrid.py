"""Tests for the low-rank tri-plane and hash-grid pipelines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.renderers.hashgrid import HashGridRenderer, spatial_hash
from repro.renderers.lowrank import LowRankRenderer
from repro.renderers.lowrank.triplane import bilinear_2d, trilinear_3d


class TestBilinearTrilinear:
    def test_bilinear_exact_at_grid_points(self):
        rng = np.random.default_rng(0)
        plane = rng.normal(size=(5, 5, 2))
        # Unit coordinate of grid point (i, j) is i/(R-1).
        u = np.array([0.0, 0.25, 1.0])
        v = np.array([0.0, 0.5, 1.0])
        out = bilinear_2d(plane, u, v)
        assert np.allclose(out[0], plane[0, 0])
        assert np.allclose(out[1], plane[1, 2])
        assert np.allclose(out[2], plane[4, 4])

    @given(st.floats(0, 1), st.floats(0, 1))
    @settings(max_examples=50, deadline=None)
    def test_bilinear_within_convex_hull(self, u, v):
        plane = np.random.default_rng(1).uniform(-2, 3, size=(6, 6, 3))
        out = bilinear_2d(plane, np.array([u]), np.array([v]))
        assert np.all(out >= plane.min() - 1e-9)
        assert np.all(out <= plane.max() + 1e-9)

    def test_trilinear_reproduces_constant(self):
        grid = np.full((4, 4, 4, 2), 3.25)
        pts = np.random.default_rng(2).uniform(0, 1, (32, 3))
        assert np.allclose(trilinear_3d(grid, pts), 3.25)

    def test_trilinear_linear_in_x(self):
        # Grid storing f(x) = x should interpolate linearly.
        res = 5
        lin = np.linspace(0, 1, res)
        grid = np.tile(lin[:, None, None, None], (1, res, res, 1))
        pts = np.array([[0.5, 0.3, 0.7], [0.123, 0.9, 0.1]])
        out = trilinear_3d(grid, pts)
        assert np.allclose(out[:, 0], pts[:, 0], atol=1e-9)


class TestTriplaneModel:
    def test_features_additive_structure(self, triplane_model, rng):
        pts = rng.uniform(triplane_model.lo, triplane_model.hi, (16, 3))
        feats = triplane_model.features(pts)
        assert feats.shape == (16, triplane_model.grid3d.shape[3])
        assert np.all(np.isfinite(feats))

    def test_query_ranges(self, triplane_model, rng):
        pts = rng.uniform(-1, 1, (64, 3))
        dirs = np.tile([0, 0, 1.0], (64, 1))
        sigma, rgb = triplane_model.query(pts, dirs)
        assert np.all(sigma >= 0)
        assert np.all((rgb >= 0) & (rgb <= 1))

    def test_storage_counts_planes_and_grid(self, triplane_model):
        plane_bytes = sum(p.size for p in triplane_model.planes) * 2
        assert triplane_model.storage_bytes() >= plane_bytes

    def test_factorization_beats_grid_alone(self, triplane_model, lego_field, rng):
        """The planes must add information beyond the coarse grid."""
        from repro.renderers.lowrank.triplane import _feature_targets

        unit = rng.uniform(0, 1, (1024, 3))
        world = triplane_model.lo + unit * (triplane_model.hi - triplane_model.lo)
        target = _feature_targets(lego_field, world, triplane_model.sigma_scale)
        dense = target[:, 0] > 0.02  # factorization is occupancy-weighted
        if dense.sum() < 16:
            pytest.skip("probe hit too little matter")
        full = triplane_model.features(world)
        grid_only = trilinear_3d(triplane_model.grid3d, unit)
        err_full = np.mean((full[dense] - target[dense]) ** 2)
        err_grid = np.mean((grid_only[dense] - target[dense]) ** 2)
        assert err_full < err_grid

    def test_render(self, triplane_model, lego_field, lego_camera):
        image, stats = LowRankRenderer(triplane_model, lego_field).render(lego_camera)
        assert image.shape == (32, 32, 3)
        shaded = stats.get("samples_shaded")
        assert stats.get("plane_fetches") == 12 * shaded
        assert stats.get("grid_fetches") == 8 * shaded


class TestSpatialHash:
    def test_range_and_determinism(self):
        coords = np.random.default_rng(0).integers(0, 1000, (256, 3))
        h1 = spatial_hash(coords, 4096)
        h2 = spatial_hash(coords, 4096)
        assert np.array_equal(h1, h2)
        assert h1.min() >= 0 and h1.max() < 4096

    def test_requires_power_of_two(self):
        with pytest.raises(ConfigError):
            spatial_hash(np.zeros((1, 3), dtype=int), 1000)

    def test_collisions_exist_by_pigeonhole(self):
        coords = np.stack(
            np.meshgrid(np.arange(32), np.arange(32), np.arange(4), indexing="ij"),
            axis=-1,
        ).reshape(-1, 3)
        idx = spatial_hash(coords, 1024)  # 4096 vertices, 1024 slots
        assert len(np.unique(idx)) <= 1024

    @given(st.integers(4, 16))
    @settings(max_examples=20, deadline=None)
    def test_distribution_not_degenerate(self, log2_size):
        size = 1 << log2_size
        coords = np.random.default_rng(3).integers(0, 10_000, (2048, 3))
        idx = spatial_hash(coords, size)
        # Should touch a decent share of the table, not collapse.
        assert len(np.unique(idx)) > min(size, 2048) // 8


class TestHashGridModel:
    def test_dense_levels_are_collision_free(self, hashgrid_model):
        for level in range(hashgrid_model.n_levels):
            if hashgrid_model.level_is_dense(level):
                assert hashgrid_model.collision_rate(level) == 0.0

    def test_fine_levels_collide(self, hashgrid_model):
        finest = hashgrid_model.n_levels - 1
        if hashgrid_model.level_is_dense(finest):
            pytest.skip("fixture has no hashed level")
        assert hashgrid_model.collision_rate(finest) > 0.0

    def test_lookup_weights_sum_to_one(self, hashgrid_model, rng):
        unit = rng.uniform(0, 1 - 1e-9, (64, 3))
        for level in (0, hashgrid_model.n_levels - 1):
            _idx, w = hashgrid_model.level_lookup(level, unit)
            assert np.allclose(w.sum(axis=1), 1.0, atol=1e-9)
            assert np.all(w >= -1e-12)

    def test_encode_width(self, hashgrid_model, rng):
        pts = rng.uniform(-1, 1, (8, 3))
        feats = hashgrid_model.encode(pts)
        assert feats.shape == (8, hashgrid_model.encoding_width)

    def test_query_ranges(self, hashgrid_model, rng):
        pts = rng.uniform(-1, 1, (64, 3))
        dirs = np.tile([1.0, 0, 0], (64, 1))
        sigma, rgb = hashgrid_model.query(pts, dirs)
        assert np.all(sigma >= 0)
        assert np.all((rgb >= 0) & (rgb <= 1))

    def test_training_separates_matter(self, hashgrid_model, lego_field, rng):
        pts = rng.uniform(-0.8, 0.8, (512, 3))
        dirs = np.tile([0, 0, 1.0], (512, 1))
        sigma_t, _ = lego_field.density_and_color(pts, dirs)
        sigma_p, _ = hashgrid_model.query(pts, dirs)
        dense = sigma_t > 20
        if dense.sum() > 4 and (~dense).sum() > 4:
            assert sigma_p[dense].mean() > 2 * max(sigma_p[~dense].mean(), 1e-6)

    def test_render_counts_lookups(self, hashgrid_model, lego_field, lego_camera):
        image, stats = HashGridRenderer(hashgrid_model, lego_field).render(lego_camera)
        assert image.shape == (32, 32, 3)
        shaded = stats.get("samples_shaded")
        assert stats.get("hash_lookups") == 8 * hashgrid_model.n_levels * shaded

    def test_build_rejects_bad_growth(self, lego_field):
        from repro.renderers.hashgrid import build_hashgrid_model

        with pytest.raises(ConfigError):
            build_hashgrid_model(lego_field, growth=1.0, train_steps=1)
