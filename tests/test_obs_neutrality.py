"""Observer neutrality: instrumentation must never move a number.

Every scenario here runs twice — bare, and under a full observer
(tracer + metrics + flight recorder, sample 1.0) — and asserts the two
``ServiceReport.to_dict()`` payloads are *byte-identical* once
serialized. The frozen golden scenarios double as the fixture: if an
observer hook ever perturbs admission, batching, dispatch, compile
scheduling, or autoscaling, the goldens themselves would catch the
drift in absolute terms and this suite pinpoints the observer as the
cause.
"""

import json

import pytest

from repro.obs import FlightRecorder, MetricsRegistry, Observer, Tracer
from repro.serve import (
    Autoscaler,
    PipelineBatcher,
    ServeCluster,
    TraceCache,
    generate_traffic,
    make_admission_policy,
    simulate_service,
)
from tests.test_serve_golden import stub_program


def full_observer(sample=1.0):
    return Observer(
        tracer=Tracer(sample=sample),
        metrics=MetricsRegistry(),
        flight=FlightRecorder(),
    )


def serialized(report):
    return json.dumps(report.to_dict(), sort_keys=True)


def golden_run(pattern, policy, observer=None):
    # Mirrors tests/test_serve_golden.py::run_scenario plus the observer.
    trace = generate_traffic(pattern=pattern, n_requests=60, rate_rps=12000.0,
                             seed=42, resolution=(64, 64), slo_s=0.0005)
    return simulate_service(
        trace,
        ServeCluster(3, policy=policy),
        cache=TraceCache(capacity=64,
                         compile_fn=lambda key: stub_program(key[1])),
        batcher=PipelineBatcher(),
        observer=observer,
    )


class TestGoldenScenarioNeutrality:
    @pytest.mark.parametrize("pattern", ["steady", "bursty"])
    @pytest.mark.parametrize("policy", ["round-robin", "pipeline-affinity",
                                        "cost-aware"])
    def test_report_byte_identical_with_full_observer(self, pattern, policy):
        bare = serialized(golden_run(pattern, policy))
        observed = serialized(golden_run(pattern, policy, full_observer()))
        assert bare == observed

    def test_report_byte_identical_under_sampling(self):
        bare = serialized(golden_run("bursty", "pipeline-affinity"))
        observed = serialized(
            golden_run("bursty", "pipeline-affinity", full_observer(0.25)))
        assert bare == observed

    def test_observer_via_cluster_is_equivalent(self):
        direct = golden_run("bursty", "round-robin", full_observer())
        trace = generate_traffic(pattern="bursty", n_requests=60,
                                 rate_rps=12000.0, seed=42,
                                 resolution=(64, 64), slo_s=0.0005)
        via_cluster = simulate_service(
            trace,
            ServeCluster(3, policy="round-robin", observer=full_observer()),
            cache=TraceCache(capacity=64,
                             compile_fn=lambda key: stub_program(key[1])),
            batcher=PipelineBatcher(),
        )
        assert serialized(direct) == serialized(via_cluster)


class TestHardScenarioNeutrality:
    """The paths with the most observer hooks: shed storms under an
    autoscaler, and the async compile pool with prefetch."""

    def run_elastic(self, observer=None):
        trace = generate_traffic("bursty", n_requests=120, rate_rps=20000.0,
                                 seed=7, resolution=(64, 64), slo_s=0.0005)
        return simulate_service(
            trace,
            ServeCluster(1, policy="least-loaded"),
            cache=TraceCache(capacity=64,
                             compile_fn=lambda key: stub_program(key[1])),
            batcher=PipelineBatcher(),
            autoscaler=Autoscaler(min_chips=1, max_chips=4, window_s=0.005,
                                  warmup_s=0.0005, cooldown_s=0.001),
            admission=make_admission_policy("slo-shed"),
            observer=observer,
        )

    def run_compile_pool(self, observer=None):
        trace = generate_traffic("bursty", n_requests=120, rate_rps=20000.0,
                                 seed=7, resolution=(64, 64), slo_s=0.0005)
        return simulate_service(
            trace,
            ServeCluster(2),
            cache=TraceCache(capacity=64,
                             compile_fn=lambda key: stub_program(key[1])),
            batcher=PipelineBatcher(),
            compile_workers=2,
            prefetch=True,
            observer=observer,
        )

    def test_autoscaled_shed_storm_is_neutral(self):
        bare = self.run_elastic()
        observed = self.run_elastic(full_observer())
        assert bare.n_shed > 0          # the storm actually happened
        assert serialized(bare) == serialized(observed)

    def test_compile_pool_with_prefetch_is_neutral(self):
        bare = self.run_compile_pool()
        observed = self.run_compile_pool(full_observer())
        assert serialized(bare) == serialized(observed)

    def test_sinkless_observer_resolves_to_nothing(self):
        # Observer() with no sinks is the disabled path — identical by
        # construction, asserted anyway as the contract.
        bare = self.run_compile_pool()
        observed = self.run_compile_pool(Observer())
        assert serialized(bare) == serialized(observed)


class TestChaosNeutrality:
    """Fault and hedging hooks (on_crash / on_recover / on_hedge /
    on_hedge_settle, plus the flight recorder's chip-crash trigger) are
    the newest observer surface; a crash-recovery run with hedging must
    stay byte-identical observed or not."""

    def run_chaos(self, observer=None):
        from repro.serve import ChipCrash, FaultPlan, HedgePolicy, \
            StragglerWindow

        trace = generate_traffic("bursty", n_requests=80, rate_rps=8000.0,
                                 seed=9, resolution=(64, 64), slo_s=0.002)
        horizon = max(r.arrival_s for r in trace)
        plan = FaultPlan(
            crashes=[ChipCrash(0, horizon * 0.3, horizon * 0.4),
                     ChipCrash(2, horizon * 0.6, None)],
            stragglers=[StragglerWindow(1, 0.0, horizon, 4.0)],
            rollback_s=0.0005,
        )
        return simulate_service(
            trace,
            ServeCluster(3),
            cache=TraceCache(capacity=64,
                             compile_fn=lambda key: stub_program(key[1])),
            batcher=PipelineBatcher(),
            faults=plan,
            hedge=HedgePolicy(quantile=0.5, min_samples=8, window=64),
            observer=observer,
        )

    def test_crash_recovery_run_is_neutral(self):
        bare = self.run_chaos()
        observer = full_observer()
        observed = self.run_chaos(observer)
        # The scenario really exercised the chaos hooks...
        assert bare.fault_stats["n_crashes"] == 2
        assert bare.fault_stats["n_recoveries"] == 1
        assert bare.hedge_stats["n_hedged"] > 0
        # ...the flight recorder caught the crashes...
        assert observer.flight is not None
        reasons = [d["reason"] for d in observer.flight.dumps]
        assert any(r.startswith("chip-crash") for r in reasons)
        # ...and none of it moved a single number.
        assert serialized(bare) == serialized(observed)
