"""Unit tests of the elastic-serving pieces: autoscaler and admission.

The integration behavior (invariants under randomized traffic, the
cost-vs-static headline) lives in test_serve_invariants.py and
benchmarks/test_elastic.py; here each controller decision and admission
verdict is pinned in isolation against hand-built cluster state.
"""

import pytest

from repro.core.config import AcceleratorConfig
from repro.errors import ConfigError
from repro.serve import (
    ADMISSION_POLICIES,
    Autoscaler,
    Downgrade,
    RenderRequest,
    ServeCluster,
    SloShed,
    TailDrop,
    make_admission_policy,
)


def request(i=0, pipeline="gaussian", arrival=0.0, slo=0.05):
    return RenderRequest(
        request_id=i, scene="lego", pipeline=pipeline,
        width=64, height=64, arrival_s=arrival, slo_s=slo,
    )


class TestAutoscalerValidation:
    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigError):
            Autoscaler(min_chips=0)
        with pytest.raises(ConfigError):
            Autoscaler(min_chips=4, max_chips=2)
        with pytest.raises(ConfigError):
            Autoscaler(target_queue_per_chip=0.0)
        with pytest.raises(ConfigError):
            Autoscaler(slo_target=1.5)
        with pytest.raises(ConfigError):
            Autoscaler(window_s=0.0)


class TestScaleUp:
    def test_queue_pressure_adds_a_chip(self):
        cluster = ServeCluster(1)
        scaler = Autoscaler(min_chips=1, max_chips=2,
                            target_queue_per_chip=4.0, cooldown_s=0.0)
        scaler.observe(0.0, cluster, queue_depth=10)
        assert cluster.n_active == 2
        assert [e.action for e in scaler.events] == ["add"]
        assert scaler.events[0].n_active == 2

    def test_ceiling_is_respected(self):
        cluster = ServeCluster(2)
        scaler = Autoscaler(min_chips=1, max_chips=2, cooldown_s=0.0)
        scaler.observe(0.0, cluster, queue_depth=100)
        assert cluster.n_active == 2
        assert scaler.events == []

    def test_warmup_delays_the_new_chip(self):
        cluster = ServeCluster(1)
        scaler = Autoscaler(max_chips=2, warmup_s=0.5, cooldown_s=0.0)
        scaler.observe(1.0, cluster, queue_depth=50)
        added = cluster.chips[-1]
        assert added.added_at_s == 1.0
        assert added.free_at_s == 1.5

    def test_growth_configs_cycle(self):
        big = AcceleratorConfig().scaled(2, 2)
        cluster = ServeCluster(1)
        scaler = Autoscaler(max_chips=4, cooldown_s=0.0,
                            growth_configs=[big, None])
        for t in (0.0, 0.1, 0.2):
            scaler.observe(t, cluster, queue_depth=50)
        assert [c.config.label for c in cluster.chips[1:]] == [
            big.label, AcceleratorConfig().label, big.label
        ]

    def test_bad_windowed_slo_triggers_growth_without_queue(self):
        cluster = ServeCluster(1)
        scaler = Autoscaler(max_chips=2, slo_target=0.9, cooldown_s=0.0)
        for k in range(10):
            scaler.record_response(finish_s=0.01 * k, slo_met=(k % 2 == 0))
        scaler.observe(0.1, cluster, queue_depth=0)
        assert cluster.n_active == 2

    def test_cooldown_rate_limits_actions(self):
        cluster = ServeCluster(1)
        scaler = Autoscaler(max_chips=4, cooldown_s=1.0)
        scaler.observe(0.0, cluster, queue_depth=50)
        scaler.observe(0.5, cluster, queue_depth=50)  # inside cooldown
        assert cluster.n_active == 2
        scaler.observe(1.0, cluster, queue_depth=50)
        assert cluster.n_active == 3


class TestScaleDown:
    def calm_scaler(self, **kwargs):
        return Autoscaler(min_chips=1, max_chips=4, cooldown_s=0.0, **kwargs)

    def test_idle_fleet_retires_most_expensive_chip(self):
        big = AcceleratorConfig().scaled(2, 2)
        cluster = ServeCluster(configs=[AcceleratorConfig(), big])
        scaler = self.calm_scaler()
        scaler.observe(1.0, cluster, queue_depth=0)
        assert cluster.n_active == 1
        assert cluster.chips[1].retired_at_s == 1.0  # the pricey chip went
        assert [e.action for e in scaler.events] == ["retire"]

    def test_floor_is_respected(self):
        cluster = ServeCluster(2)
        scaler = Autoscaler(min_chips=2, max_chips=4, cooldown_s=0.0)
        scaler.observe(1.0, cluster, queue_depth=0)
        assert cluster.n_active == 2

    def test_busy_chips_are_not_retired(self):
        cluster = ServeCluster(2)
        cluster.chips[1].free_at_s = 5.0  # still rendering
        scaler = self.calm_scaler()
        scaler.observe(1.0, cluster, queue_depth=0)
        # Only one chip is idle right now; retiring it would leave the
        # busy chip alone mid-batch, so the controller holds.
        assert cluster.n_active == 2

    def test_window_prunes_old_samples(self):
        scaler = Autoscaler(window_s=0.1)
        scaler.observe(0.0, ServeCluster(1), queue_depth=100)
        scaler.observe(1.0, ServeCluster(1), queue_depth=0)
        assert scaler.mean_queue_depth() == pytest.approx(0.0)


class TestShedPressureFeedback:
    def test_sustained_shedding_grows_the_fleet(self):
        # Overload a single chip hard enough that slo-shed refuses most
        # arrivals: shed requests must still register as SLO misses in
        # the controller's window, or admission control would hide the
        # very pressure that should trigger scale-up.
        from repro.compile.workloads import gemm_workload
        from repro.core.microops import MicroOp, MicroOpProgram
        from repro.serve import (PipelineBatcher, TraceCache,
                                 generate_traffic, simulate_service)

        def program(pipeline):
            p = MicroOpProgram(pipeline=pipeline, pixels=1024)
            p.append(MicroOp.GEMM, "mlp",
                     gemm_workload(macs=2e8, rows=1e3, in_width=32,
                                   out_width=4, weight_bytes=1e4))
            return p

        trace = generate_traffic("steady", n_requests=60, rate_rps=20000.0,
                                 seed=0, resolution=(64, 64), slo_s=0.0005)
        report = simulate_service(
            trace,
            ServeCluster(1, policy="least-loaded"),
            cache=TraceCache(capacity=64,
                             compile_fn=lambda key: program(key[1])),
            batcher=PipelineBatcher(),
            autoscaler=Autoscaler(min_chips=1, max_chips=4,
                                  window_s=0.005, warmup_s=0.0005,
                                  cooldown_s=0.001),
            admission=make_admission_policy("slo-shed"),
        )
        assert report.n_shed > 0
        assert report.peak_fleet_size > 1, \
            "shedding suppressed the scale-up signal"


class TestAdmissionPolicies:
    def test_registry_and_factory(self):
        assert set(ADMISSION_POLICIES) == {
            "admit-all", "tail-drop", "slo-shed", "downgrade", "weighted"
        }
        with pytest.raises(ConfigError):
            make_admission_policy("bouncer")

    def test_admit_all_never_sheds(self):
        policy = make_admission_policy("admit-all")
        r = request()
        assert policy.admit(r, 0.0, 1e9, 1e9, 10_000) is r

    def test_tail_drop_bounds_the_queue(self):
        policy = TailDrop(max_queue=4)
        assert policy.admit(request(), 0.0, 0.0, 0.0, 3) is not None
        assert policy.admit(request(), 0.0, 0.0, 0.0, 4) is None
        with pytest.raises(ConfigError):
            TailDrop(max_queue=0)

    def test_slo_shed_uses_projection_and_margin(self):
        r = request(slo=0.05)
        assert SloShed().admit(r, 0.0, 0.02, 0.02, 5) is r
        assert SloShed().admit(r, 0.0, 0.04, 0.02, 5) is None
        # A generous margin lets the borderline request through.
        assert SloShed(margin=1.5).admit(r, 0.0, 0.04, 0.02, 5) is r
        with pytest.raises(ConfigError):
            SloShed(margin=0.0)

    def test_downgrade_rewrites_to_cheapest_rung(self):
        policy = Downgrade()
        r = request(pipeline="gaussian", slo=0.05)
        verdict = policy.admit(r, 0.0, 0.1, 0.02, 5)
        assert verdict is not None
        assert verdict.pipeline == "mesh"
        assert verdict.degraded is True
        assert verdict.request_id == r.request_id
        assert verdict.slo_s == r.slo_s

    def test_downgrade_sheds_at_the_bottom_of_the_ladder(self):
        policy = Downgrade()
        assert policy.admit(request(pipeline="mesh"), 0.0, 0.1, 0.02, 5) is None

    def test_downgrade_admits_when_projection_fits(self):
        policy = Downgrade()
        r = request(pipeline="gaussian")
        verdict = policy.admit(r, 0.0, 0.0, 0.001, 0)
        assert verdict is r  # untouched

    def test_downgrade_ladder_validation(self):
        with pytest.raises(ConfigError):
            Downgrade(ladder=("mesh",))


class TestSloWindowSemantics:
    """Locks the shed-path window semantics the engine relies on.

    A refusal enters the controller's SLO window *immediately at its
    arrival stamp* — the controller must see overload pressure the
    instant admission starts refusing work. A served request enters at
    its *finish time*, and only once simulated time has reached that
    finish (the in-flight heap pops in the controller tick) — the
    window never sees the future. Every offered request contributes
    exactly one sample.
    """

    class SpyAutoscaler(Autoscaler):
        def __init__(self, **kwargs):
            super().__init__(**kwargs)
            self.log = []   # ("shed"/"response", t_s, slo_met) + observes

        def observe(self, now, cluster, queue_depth, **kwargs):
            self.log.append(("observe", now, None))
            return super().observe(now, cluster, queue_depth, **kwargs)

        def record_shed(self, shed_at_s):
            self.log.append(("shed", shed_at_s, False))
            super().record_shed(shed_at_s)

        def record_response(self, finish_s, slo_met):
            self.log.append(("response", finish_s, slo_met))
            super().record_response(finish_s, slo_met)

    def run_spied_storm(self):
        from repro.compile.workloads import gemm_workload
        from repro.core.microops import MicroOp, MicroOpProgram
        from repro.serve import (PipelineBatcher, TraceCache,
                                 generate_traffic, simulate_service)

        def program(pipeline):
            p = MicroOpProgram(pipeline=pipeline, pixels=1024)
            p.append(MicroOp.GEMM, "mlp",
                     gemm_workload(macs=2e8, rows=1e3, in_width=32,
                                   out_width=4, weight_bytes=1e4))
            return p

        spy = self.SpyAutoscaler(min_chips=1, max_chips=4, window_s=0.005,
                                 warmup_s=0.0005, cooldown_s=0.001)
        trace = generate_traffic("steady", n_requests=60, rate_rps=20000.0,
                                 seed=0, resolution=(64, 64), slo_s=0.0005)
        report = simulate_service(
            trace,
            ServeCluster(1, policy="least-loaded"),
            cache=TraceCache(capacity=64,
                             compile_fn=lambda key: program(key[1])),
            batcher=PipelineBatcher(),
            autoscaler=spy,
            admission=make_admission_policy("slo-shed"),
        )
        return report, spy

    def test_exactly_one_window_sample_per_offered_request(self):
        report, spy = self.run_spied_storm()
        sheds = [t for kind, t, _ in spy.log if kind == "shed"]
        # record_shed delegates to record_response, so the response
        # entries cover every window sample: one per offered request.
        samples = [(t, met) for kind, t, met in spy.log if kind == "response"]
        assert report.n_shed > 0 and report.responses
        assert len(samples) == report.n_offered
        assert len(sheds) == report.n_shed

    def test_sheds_enter_the_window_at_their_arrival_stamp(self):
        report, spy = self.run_spied_storm()
        shed_samples = sorted(t for kind, t, _ in spy.log if kind == "shed")
        shed_stamps = sorted(record.shed_at_s for record in report.shed)
        assert shed_samples == shed_stamps
        arrival_stamps = sorted(record.request.arrival_s
                                for record in report.shed)
        assert shed_samples == arrival_stamps

    def test_served_requests_enter_at_finish_and_never_early(self):
        report, spy = self.run_spied_storm()
        shed_stamps = {record.shed_at_s for record in report.shed}
        served = [(t, met) for kind, t, met in spy.log
                  if kind == "response" and t not in shed_stamps]
        expected = sorted((r.finish_s, r.slo_met) for r in report.responses)
        assert sorted(served) == expected
        # No clairvoyance: a finish-time sample is recorded during the
        # controller tick whose `now` has reached it — the very next
        # observe() in the log must not be earlier than the sample.
        for i, (kind, t, _met) in enumerate(spy.log):
            if kind != "response" or t in shed_stamps:
                continue
            following = [n for k, n, _ in spy.log[i + 1:] if k == "observe"]
            assert not following or following[0] >= t - 1e-12, (
                f"finish-time sample {t} recorded before simulated time "
                f"reached it (next tick at {following[0]})"
            )
