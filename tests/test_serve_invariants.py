"""Scheduler invariants under randomized traffic.

Example-based tests pin specific schedules; this suite instead asserts
properties that must hold for *every* schedule the discrete-event loop
can produce — seeded random traffic crossed with every sharding policy,
several fleet shapes (single chip, homogeneous, heterogeneous), and the
elastic features (autoscaler, each admission policy):

* causality — no response finishes before it starts, starts before its
  request arrives, or runs outside its chip's provisioned lifetime;
* mutual exclusion — a chip never runs two batches at once;
* completeness — every request is either shed or answered exactly once;
* conservation — cycles, switches, energy, and busy time summed over
  responses equal the per-chip lifetime accounting;
* determinism — the same seed reproduces an identical ServiceReport.

The trace cache is stubbed with per-pipeline synthetic programs so the
suite exercises the scheduler, not the performance model.
"""

import pytest

from repro.compile.workloads import gemm_workload
from repro.core.config import AcceleratorConfig
from repro.core.microops import MicroOp, MicroOpProgram
from repro.serve import (
    ADMISSION_POLICIES,
    Autoscaler,
    PipelineBatcher,
    ServeCluster,
    SHARDING_POLICIES,
    TraceCache,
    generate_traffic,
    make_admission_policy,
    simulate_service,
)

#: Deterministic per-pipeline cost skew: frame costs differ by ~8x so
#: batching, affinity, and admission projections all have teeth.
_PIPELINE_MACS = {"hashgrid": 2e7, "gaussian": 1.6e8, "mesh": 4e7}


def stub_program(pipeline):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=_PIPELINE_MACS.get(pipeline, 5e7), rows=1e3,
                      in_width=32, out_width=4, weight_bytes=1e4),
    )
    return program


def stub_cache():
    return TraceCache(capacity=64, compile_fn=lambda key: stub_program(key[1]))


FLEET_SHAPES = {
    "single": dict(n_chips=1),
    "homogeneous": dict(n_chips=4),
    "heterogeneous": dict(configs=[
        AcceleratorConfig(),
        AcceleratorConfig(),
        AcceleratorConfig().scaled(2, 2),
    ]),
}

#: High enough to build real queues against the stub frame costs.
TRAFFIC = dict(n_requests=70, rate_rps=4000.0, resolution=(64, 64),
               slo_s=0.002)


def run_service(policy, fleet, pattern="mixed", seed=0, autoscale=False,
                admission=None):
    trace = generate_traffic(pattern=pattern, seed=seed, **TRAFFIC)
    autoscaler = None
    if autoscale:
        autoscaler = Autoscaler(
            min_chips=1, max_chips=6, target_queue_per_chip=2.0,
            window_s=0.005, warmup_s=0.0005, cooldown_s=0.001,
            growth_configs=[AcceleratorConfig().scaled(2, 2), None],
        )
    return simulate_service(
        trace,
        ServeCluster(policy=policy, **FLEET_SHAPES[fleet]),
        cache=stub_cache(),
        batcher=PipelineBatcher(),
        autoscaler=autoscaler,
        admission=make_admission_policy(admission) if admission else None,
    ), trace


def assert_invariants(report, trace):
    eps = 1e-12

    # -- causality ------------------------------------------------------
    by_chip = {}
    for r in report.responses:
        assert r.finish_s > r.start_s, "response finished before it started"
        assert r.start_s >= r.request.arrival_s - eps, \
            "response started before its request arrived"
        by_chip.setdefault(r.chip_id, []).append(r)

    chips = {c.chip_id: c for c in report.chips}
    for chip_id, chip_responses in by_chip.items():
        chip = chips[chip_id]
        for r in chip_responses:
            assert r.start_s >= chip.added_at_s - eps, \
                "chip served work before it was provisioned"
            if chip.retired_at_s is not None:
                assert r.finish_s <= chip.retired_at_s + eps, \
                    "retired chip kept serving"

        # -- mutual exclusion ------------------------------------------
        ordered = sorted(chip_responses, key=lambda r: r.start_s)
        for before, after in zip(ordered, ordered[1:]):
            assert after.start_s >= before.finish_s - eps, \
                f"chip {chip_id} ran two batches at once"

    # -- completeness ---------------------------------------------------
    served_ids = sorted(r.request.request_id for r in report.responses)
    assert len(set(served_ids)) == len(served_ids), "request served twice"
    shed_ids = sorted(s.request.request_id for s in report.shed)
    assert len(set(shed_ids)) == len(shed_ids), "request shed twice"
    assert not set(served_ids) & set(shed_ids), "request both shed and served"
    assert sorted(served_ids + shed_ids) == [r.request_id for r in trace], \
        "requests lost or invented"

    # -- conservation ---------------------------------------------------
    for chip_id, chip in chips.items():
        rs = by_chip.get(chip_id, [])
        assert chip.requests_served == len(rs)
        assert chip.frame_cycles == pytest.approx(sum(r.cycles for r in rs))
        assert chip.switch_cycles == pytest.approx(
            sum(r.switch_cycles for r in rs))
        assert chip.frame_reconfig_cycles == pytest.approx(
            sum(r.frame_reconfig_cycles for r in rs))
        assert chip.energy_j == pytest.approx(sum(r.energy_j for r in rs))
        assert chip.busy_s == pytest.approx(
            sum(r.service_s for r in rs), abs=1e-12)
    assert report.total_switch_cycles == pytest.approx(
        sum(r.switch_cycles for r in report.responses))
    assert report.total_chip_seconds >= sum(
        c.busy_s for c in report.chips) - eps


class TestPolicyFleetMatrix:
    @pytest.mark.parametrize("policy", sorted(SHARDING_POLICIES))
    @pytest.mark.parametrize("fleet", sorted(FLEET_SHAPES))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_invariants(self, policy, fleet, seed):
        report, trace = run_service(policy, fleet, seed=seed)
        assert_invariants(report, trace)

    @pytest.mark.parametrize("policy", sorted(SHARDING_POLICIES))
    @pytest.mark.parametrize("pattern", ["steady", "bursty", "diurnal"])
    def test_invariants_across_patterns(self, policy, pattern):
        report, trace = run_service(policy, "heterogeneous", pattern=pattern)
        assert_invariants(report, trace)


class TestElasticMatrix:
    @pytest.mark.parametrize("policy", sorted(SHARDING_POLICIES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_autoscaled_invariants(self, policy, seed):
        report, trace = run_service(policy, "single", pattern="bursty",
                                    seed=seed, autoscale=True)
        assert_invariants(report, trace)
        assert report.peak_fleet_size >= 1

    @pytest.mark.parametrize("admission", sorted(ADMISSION_POLICIES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_admission_invariants(self, admission, seed):
        report, trace = run_service("cost-aware", "homogeneous",
                                    pattern="bursty", seed=seed,
                                    autoscale=True, admission=admission)
        assert_invariants(report, trace)

    def test_slo_shed_actually_sheds_under_overload(self):
        report, trace = run_service("least-loaded", "single",
                                    pattern="bursty", admission="slo-shed")
        assert_invariants(report, trace)
        assert report.n_shed > 0
        assert report.n_requests + report.n_shed == len(trace)

    def test_downgrade_rewrites_instead_of_shedding(self):
        report, trace = run_service("least-loaded", "single",
                                    pattern="bursty", admission="downgrade")
        assert_invariants(report, trace)
        assert report.n_degraded > 0
        # Degraded requests land on the ladder's cheapest pipeline.
        degraded = [r for r in report.responses if r.request.degraded]
        assert all(r.request.pipeline == "mesh" for r in degraded)


class TestDeterminism:
    @pytest.mark.parametrize("policy", sorted(SHARDING_POLICIES))
    def test_same_seed_same_report(self, policy):
        a, _ = run_service(policy, "heterogeneous", pattern="bursty",
                           seed=3, autoscale=True, admission="slo-shed")
        b, _ = run_service(policy, "heterogeneous", pattern="bursty",
                           seed=3, autoscale=True, admission="slo-shed")
        da, db = a.to_dict(), b.to_dict()
        da.pop("cache"), db.pop("cache")  # compile wall time is host noise
        assert da == db

    def test_different_seed_different_schedule(self):
        a, _ = run_service("least-loaded", "homogeneous", seed=0)
        b, _ = run_service("least-loaded", "homogeneous", seed=1)
        assert [r.finish_s for r in a.responses] != \
            [r.finish_s for r in b.responses]
