"""Multi-tenant QoS invariants under randomized traffic.

The fairness companion of ``test_serve_invariants``: seeded random
two- and three-tenant traffic crossed with every sharding policy,
several fleet shapes, weighted admission, batch preemption, and
autoscaling — asserting the properties every QoS schedule must satisfy:

* per-tenant conservation — every offered request of every tenant class
  is either shed or completed, exactly once, preempted or not;
* exactly-once across preemption/migration — a displaced batch's
  members complete exactly once, and migration (finishing on a chip
  other than the one displaced from) never duplicates or loses work;
* no priority inversion among queued batches — when a batch is formed,
  no older *queued* request of a more premium tier is left waiting
  (in-flight batches are not preemptible by design and don't count);
* single-tier batches — QoS batches never carry economy passengers
  ahead of queued premium work;
* determinism — the same seed reproduces bit-identical per-tenant
  reports, fairness index included.

Also pins the backward-compatibility contract: with a single default
tenant and preemption unused, the engine's output is byte-identical to
the pre-tenant engine's (the PR-3 goldens in ``test_serve_golden``
already freeze those numbers; here the tagged and untagged runs are
compared directly, compile stats included).

The trace cache is stubbed with per-pipeline synthetic programs so the
suite exercises the scheduler, not the performance model.
"""

from dataclasses import replace

import pytest

from repro.core.config import AcceleratorConfig, CompileLatencyModel
from repro.serve import (
    Autoscaler,
    DEFAULT_TENANT,
    PipelineBatcher,
    ServeCluster,
    SHARDING_POLICIES,
    TenantClass,
    TraceCache,
    generate_tenant_traffic,
    generate_traffic,
    make_admission_policy,
    parse_tenant_spec,
    simulate_service,
)
from repro.errors import ConfigError
from tests.test_serve_invariants import assert_invariants, stub_program


def stub_cache(model=None):
    return TraceCache(capacity=64,
                      compile_fn=lambda key: stub_program(key[1]),
                      latency_model=model)


PREMIUM = TenantClass("premium", slo_multiplier=1.0, weight=4.0, tier=0)
STANDARD = TenantClass("standard", slo_multiplier=1.5, weight=2.0, tier=1)
ECONOMY = TenantClass("economy", slo_multiplier=2.0, weight=1.0, tier=2)

TWO_TENANTS = ((PREMIUM, 0.25), (ECONOMY, 0.75))
THREE_TENANTS = ((PREMIUM, 0.2), (STANDARD, 0.3), (ECONOMY, 0.5))

FLEET_SHAPES = {
    "single": dict(n_chips=1),
    "homogeneous": dict(n_chips=4),
    "heterogeneous": dict(configs=[
        AcceleratorConfig(),
        AcceleratorConfig(),
        AcceleratorConfig().scaled(2, 2),
    ]),
}

#: Hot enough to build real queues (and stage real batches) against the
#: stub frame costs.
TRAFFIC = dict(pattern="bursty", n_requests=80, rate_rps=20000.0,
               resolution=(64, 64), slo_s=0.001)


def run_tenant_service(policy="pipeline-affinity", fleet="heterogeneous",
                       mix=TWO_TENANTS, seed=0, admission="weighted",
                       preempt=True, autoscale=False, compile_workers=0):
    trace = generate_tenant_traffic(list(mix), seed=seed, **TRAFFIC)
    autoscaler = None
    if autoscale:
        autoscaler = Autoscaler(
            min_chips=1, max_chips=6, target_queue_per_chip=2.0,
            window_s=0.005, warmup_s=0.0005, cooldown_s=0.001,
            growth_configs=[AcceleratorConfig().scaled(2, 2), None],
        )
    model = CompileLatencyModel() if compile_workers else None
    report = simulate_service(
        trace,
        ServeCluster(policy=policy, **FLEET_SHAPES[fleet]),
        cache=stub_cache(model),
        batcher=PipelineBatcher(max_batch=4),
        autoscaler=autoscaler,
        admission=make_admission_policy(admission) if admission else None,
        preempt=preempt,
        compile_workers=compile_workers,
        compile_latency=model,
    )
    return report, trace


def assert_tenant_invariants(report, trace, check_inversion=True):
    """The QoS-specific invariants, on top of the scheduler-wide ones."""
    assert_invariants(report, trace)

    # -- per-tenant conservation ---------------------------------------
    offered = {}
    for request in trace:
        offered.setdefault(request.tenant.name, set()).add(request.request_id)
    served = {}
    for r in report.responses:
        served.setdefault(r.request.tenant.name, set()).add(
            r.request.request_id)
    shed = {}
    for s in report.shed:
        shed.setdefault(s.request.tenant.name, set()).add(
            s.request.request_id)
    for name, ids in offered.items():
        got_served = served.get(name, set())
        got_shed = shed.get(name, set())
        assert not got_served & got_shed, \
            f"tenant {name}: request both served and shed"
        assert got_served | got_shed == ids, \
            f"tenant {name}: requests lost or invented"
    assert set(served) | set(shed) <= set(offered), "tenant invented"

    # -- exactly-once across preemption/migration ----------------------
    preempted_ids = [r.request.request_id for r in report.responses
                     if r.preemptions > 0]
    assert len(set(preempted_ids)) == len(preempted_ids)
    migrated = [r for r in report.responses if r.migrated]
    assert all(r.preemptions > 0 for r in migrated), \
        "migration without a displacement"
    shed_ids = {s.request.request_id for s in report.shed}
    assert not set(preempted_ids) & shed_ids, \
        "preempted request was also shed"

    # -- single-tier batches -------------------------------------------
    tiers_by_batch = {}
    for r in report.responses:
        tiers_by_batch.setdefault(r.batch_id, set()).add(r.request.tier)
    n_tiers = len({r.tenant.tier for r in trace})
    if n_tiers > 1:
        assert all(len(tiers) == 1 for tiers in tiers_by_batch.values()), \
            "a QoS batch mixed priority tiers"

    # -- no priority inversion among queued batches --------------------
    # When an economy batch is formed, no older queued premium request
    # may be left waiting past it. Reconstructed from the responses:
    # premium request p was queued at economy response e's formation
    # instant iff p arrived at or before e.dispatched_s (arrivals drain
    # before dispatch at equal timestamps) and p's own batch formed
    # strictly later. Two legitimate exceptions: a premium request that
    # was itself displaced (an even more premium arrival bumped its
    # staged batch, so its *final* formation instant is late by design),
    # and async-compile runs, where a premium request can wait on its
    # trace (``check_inversion=False`` skips the whole check there).
    if check_inversion and n_tiers > 1:
        formed = {r.request.request_id: r.dispatched_s
                  for r in report.responses}
        by_tier = {}
        for r in report.responses:
            by_tier.setdefault(r.request.tier, []).append(r)
        for premium_tier, premium_rs in by_tier.items():
            for economy_tier, economy_rs in by_tier.items():
                if premium_tier >= economy_tier:
                    continue
                for e in economy_rs:
                    for p in premium_rs:
                        if p.preemptions > 0:
                            continue
                        if (p.request.arrival_s <= e.dispatched_s
                                and formed[p.request.request_id]
                                > e.dispatched_s):
                            raise AssertionError(
                                f"priority inversion: tier {economy_tier} "
                                f"batch formed at {e.dispatched_s} while "
                                f"tier {premium_tier} request "
                                f"{p.request.request_id} (arrived "
                                f"{p.request.arrival_s}) stayed queued"
                            )


class TestTenantMatrix:
    """52 seeded QoS cases across policies, fleets, mixes, and modes."""

    @pytest.mark.parametrize("policy", sorted(SHARDING_POLICIES))
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_weighted_preempt_invariants(self, policy, seed):
        report, trace = run_tenant_service(policy=policy, seed=seed)
        assert_tenant_invariants(report, trace)

    @pytest.mark.parametrize("fleet", sorted(FLEET_SHAPES))
    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_fleet_shapes(self, fleet, seed):
        report, trace = run_tenant_service(fleet=fleet, seed=seed)
        assert_tenant_invariants(report, trace)

    @pytest.mark.parametrize("policy", ["pipeline-affinity", "cost-aware"])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_autoscaled(self, policy, seed):
        report, trace = run_tenant_service(policy=policy, seed=seed,
                                           fleet="single", autoscale=True)
        assert_tenant_invariants(report, trace)
        assert report.peak_fleet_size >= 1

    @pytest.mark.parametrize("preempt", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_three_tenant_mix(self, preempt, seed):
        report, trace = run_tenant_service(mix=THREE_TENANTS, seed=seed,
                                           preempt=preempt)
        assert_tenant_invariants(report, trace)

    @pytest.mark.parametrize("admission", [None, "admit-all", "slo-shed"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_other_admission_policies(self, admission, seed):
        report, trace = run_tenant_service(admission=admission, seed=seed)
        assert_tenant_invariants(report, trace)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_async_compile(self, seed):
        # Async compile: a premium request may legitimately queue behind
        # economy while its trace compiles, so the inversion check is
        # out of scope; everything else must hold.
        report, trace = run_tenant_service(seed=seed, compile_workers=2)
        assert_tenant_invariants(report, trace, check_inversion=False)


class TestPreemptionBehaviour:
    def test_preemption_actually_fires(self):
        report, _ = run_tenant_service(seed=0)
        assert report.n_preemption_events > 0
        assert report.n_preempted > 0
        # Only economy (higher tier number) work is ever displaced.
        displaced = [r for r in report.responses if r.preemptions > 0]
        assert displaced
        assert all(r.request.tenant.tier > PREMIUM.tier for r in displaced)

    def test_migration_reaches_autoscaled_chips(self):
        report, _ = run_tenant_service(seed=1, fleet="single",
                                       autoscale=True)
        grown = {c.chip_id for c in report.chips if c.added_at_s > 0}
        if report.n_migrated:
            migrated_chips = {r.chip_id for r in report.responses
                              if r.migrated}
            # Migrated work lands somewhere other than the displaced
            # chip; with the fleet growing mid-burst that includes the
            # newly warmed chips.
            assert migrated_chips
            assert grown, "fleet never grew despite migrations"

    def test_no_preemption_without_flag(self):
        report, _ = run_tenant_service(seed=0, preempt=False)
        assert report.n_preemption_events == 0
        assert report.n_preempted == 0
        assert report.n_migrated == 0

    def test_weighted_shedding_favours_premium(self):
        report, _ = run_tenant_service(seed=2, fleet="single",
                                       autoscale=False)
        tenants = report.tenant_report()
        assert tenants["premium"]["shed_rate"] <= \
            tenants["economy"]["shed_rate"]


class TestTenantDeterminism:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_same_seed_same_tenant_report(self, seed):
        a, _ = run_tenant_service(seed=seed, autoscale=True, fleet="single")
        b, _ = run_tenant_service(seed=seed, autoscale=True, fleet="single")
        assert a.tenant_report() == b.tenant_report()
        assert a.fairness_index == b.fairness_index
        da, db = a.to_dict(), b.to_dict()
        da.pop("cache"), db.pop("cache")  # compile wall time is host noise
        assert da == db

    def test_tenant_traffic_is_reproducible(self):
        a = generate_tenant_traffic(list(TWO_TENANTS), seed=9, **TRAFFIC)
        b = generate_tenant_traffic(list(TWO_TENANTS), seed=9, **TRAFFIC)
        assert a == b
        assert [r.request_id for r in a] == list(range(len(a)))
        arrivals = [r.arrival_s for r in a]
        assert arrivals == sorted(arrivals)


class TestDefaultTenantByteCompat:
    """Preemption/tenant machinery must be a strict no-op when unused."""

    def plain_trace(self):
        return generate_traffic(pattern="bursty", n_requests=60,
                                rate_rps=12000.0, seed=42,
                                resolution=(64, 64), slo_s=0.0005)

    def run(self, trace, **kwargs):
        return simulate_service(
            trace, ServeCluster(3),
            cache=stub_cache(kwargs.pop("model", None)),
            batcher=PipelineBatcher(), **kwargs)

    def test_tagged_default_tenant_is_byte_identical(self):
        trace = self.plain_trace()
        tagged = [replace(r, tenant=DEFAULT_TENANT) for r in trace]
        a = self.run(trace).to_dict()
        b = self.run(tagged).to_dict()
        a.pop("cache"), b.pop("cache")
        assert a == b

    def test_compile_stats_unchanged_by_tenant_field(self):
        trace = self.plain_trace()
        model = CompileLatencyModel()
        a = self.run(trace, model=model, compile_workers=2,
                     compile_latency=model)
        model_b = CompileLatencyModel()
        b = self.run([replace(r, tenant=DEFAULT_TENANT) for r in trace],
                     model=model_b, compile_workers=2,
                     compile_latency=model_b)
        da, db = a.to_dict(), b.to_dict()
        assert da["compile"] == db["compile"]
        da.pop("cache"), db.pop("cache")
        assert da == db

    def test_single_tenant_report_shape(self):
        report = self.run(self.plain_trace())
        assert not report.preempt_enabled
        assert report.n_preemption_events == 0
        tenants = report.tenant_report()
        assert set(tenants) == {"default"}
        assert report.fairness_index == 1.0


class TestTenantSpec:
    def test_parse_round_trip(self):
        mix = parse_tenant_spec(
            "premium:tier=0,weight=4,share=0.25;economy:tier=1,slo=2")
        assert [(t.name, t.tier, t.weight, t.slo_multiplier, share)
                for t, share in mix] == [
            ("premium", 0, 4.0, 1.0, 0.25),
            ("economy", 1, 1.0, 2.0, 0.75),
        ]

    def test_default_tiers_follow_position(self):
        mix = parse_tenant_spec("gold;silver;bronze")
        assert [t.tier for t, _ in mix] == [0, 1, 2]
        assert sum(share for _, share in mix) == pytest.approx(1.0)

    @pytest.mark.parametrize("bad", [
        "", ":weight=2", "a:share=0.6;b:share=0.6", "a:share=1.0;b",
        "a:karma=3", "a:weight=loud", "a;a", "a:tier=0.9;b",
    ])
    def test_bad_specs_are_clean_errors(self, bad):
        with pytest.raises(ConfigError):
            parse_tenant_spec(bad)

    def test_tenant_validation(self):
        with pytest.raises(ConfigError):
            TenantClass("", weight=1.0)
        with pytest.raises(ConfigError):
            TenantClass("x", weight=0.0)
        with pytest.raises(ConfigError):
            TenantClass("x", slo_multiplier=0.0)
        with pytest.raises(ConfigError):
            TenantClass("x", tier=-1)
