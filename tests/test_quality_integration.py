"""Cross-pipeline quality integration tests.

These check the *relationships* Table I implies at our scale: meshes
trade quality for speed, fidelity knobs move PSNR the right way, and
every pipeline beats a trivial baseline.
"""

import numpy as np
import pytest

import repro
from repro.metrics import psnr
from repro.renderers.gaussian import GaussianRenderer, build_gaussian_model
from repro.renderers.hashgrid import HashGridRenderer, build_hashgrid_model
from repro.renderers.mesh import MeshRenderer
from repro.scenes import Camera, get_scene, orbit_poses


@pytest.fixture(scope="module")
def reference(lego_field):
    camera = Camera(40, 40, pose=orbit_poses(3.0, 8)[0])
    return camera, lego_field.render_reference(camera, n_samples=48)


def _psnr_of(renderer, camera, reference):
    image, _ = renderer.render(camera)
    return psnr(image, reference)


class TestQualityOrdering:
    def test_every_pipeline_beats_flat_gray(
        self, reference, lego_field, mesh_model, hashgrid_model, gaussian_model
    ):
        camera, ref = reference
        gray = np.full_like(ref, 0.5)
        floor = psnr(gray, ref)
        for renderer in (
            MeshRenderer(mesh_model, lego_field),
            HashGridRenderer(hashgrid_model, lego_field),
            GaussianRenderer(gaussian_model, lego_field),
        ):
            assert _psnr_of(renderer, camera, ref) > floor + 2.0

    def test_hashgrid_beats_coarse_mesh(
        self, reference, lego_field, mesh_model, hashgrid_model
    ):
        """Table I: the mesh bake is the lowest-quality representation."""
        camera, ref = reference
        mesh_q = _psnr_of(MeshRenderer(mesh_model, lego_field), camera, ref)
        hash_q = _psnr_of(HashGridRenderer(hashgrid_model, lego_field), camera, ref)
        assert hash_q > mesh_q

    def test_training_budget_improves_hashgrid(self, reference, lego_field):
        camera, ref = reference
        weak = build_hashgrid_model(lego_field, n_levels=6, train_steps=15,
                                    samples_per_ray=48, seed=7)
        strong = build_hashgrid_model(lego_field, n_levels=6, train_steps=200,
                                      samples_per_ray=48, seed=7)
        q_weak = _psnr_of(HashGridRenderer(weak, lego_field), camera, ref)
        q_strong = _psnr_of(HashGridRenderer(strong, lego_field), camera, ref)
        assert q_strong > q_weak + 1.0

    def test_gaussian_count_improves_quality(self, reference, lego_field):
        camera, ref = reference
        sparse = build_gaussian_model(lego_field, n_gaussians=500, seed=3)
        dense = build_gaussian_model(lego_field, n_gaussians=6000, seed=3)
        q_sparse = _psnr_of(GaussianRenderer(sparse, lego_field), camera, ref)
        q_dense = _psnr_of(GaussianRenderer(dense, lego_field), camera, ref)
        assert q_dense > q_sparse

    def test_gaussian_storage_scales_with_count(self, lego_field):
        small = build_gaussian_model(lego_field, n_gaussians=500, seed=3)
        large = build_gaussian_model(lego_field, n_gaussians=5000, seed=3)
        assert large.storage_bytes() == pytest.approx(
            10 * small.storage_bytes(), rel=0.01
        )


class TestPackageFacade:
    def test_quick_render(self):
        image, stats = repro.quick_render(
            "lego", pipeline="gaussian", size=(16, 16)
        )
        assert image.shape == (16, 16, 3)
        assert stats.get("pixels") == 256

    def test_lazy_accelerator_export(self):
        accel_cls = repro.UniRenderAccelerator
        assert accel_cls().config.n_pes == 256

    def test_unknown_attribute(self):
        with pytest.raises(AttributeError):
            repro.NotAThing  # noqa: B018

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_pipeline_tuple(self):
        assert repro.PIPELINES == ("mesh", "mlp", "lowrank", "hashgrid", "gaussian")
