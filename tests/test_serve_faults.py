"""Chaos invariants: fault injection and hedging under randomized plans.

The golden suite pins *numbers*; this suite pins the *laws* that every
chaotic schedule must obey, across 70+ seeded random fault plans
(crashes that recover, permanent losses, straggler windows, compile
stalls) crossed with hedging on/off:

* exactly-once — one response per offered request, keyed to the
  original request id: a crash re-queue or a hedge duplicate never
  produces a second response, and no hedge-clone id (negative) ever
  reaches the report;
* conservation — offered == completed + shed + failed-unrecoverable;
  the three outcome sets partition the trace;
* causality — responses finish after they start, start after arrival,
  and start on chips that were up (not inside a known outage);
* work ledger — per chip, busy time equals the service time of the
  responses it won plus the work it burned on aborted frames and
  losing hedge duplicates (``lost_work_s``);
* determinism — the same seed and plan reproduce a byte-identical
  ServiceReport, and an attached-but-empty FaultPlan is byte-identical
  to no plan at all.

The trace cache is stubbed (same synthetic per-pipeline programs as
test_serve_invariants) so the suite exercises the chaos machinery, not
the performance model.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.serve import (
    ChipCrash,
    CompileStall,
    FaultPlan,
    HedgePolicy,
    PipelineBatcher,
    ServeCluster,
    StragglerWindow,
    generate_traffic,
    simulate_service,
)
from tests.test_serve_invariants import stub_cache

#: Hot enough that queues form, so crashes strand real work and the
#: hedge threshold has waits to learn from.
TRAFFIC = dict(pattern="mixed", n_requests=80, rate_rps=8000.0,
               resolution=(64, 64), slo_s=0.002)

#: Aggressive hedging so the randomized matrix actually exercises the
#: duplicate/cancel/settle paths at this trace size.
HEDGE = HedgePolicy(quantile=0.5, multiplier=1.0, min_samples=8, window=64)

#: Three plan shapes x 12 seeds x hedge on/off = 72 randomized cases.
PLAN_SHAPES = {
    "storm": dict(n_crashes=2, recover_fraction=0.75, n_stragglers=2,
                  max_dilation=6.0, rollback_s=0.001),
    "permanent": dict(n_crashes=1, recover_fraction=0.0, n_stragglers=1,
                      max_dilation=4.0),
    "stragglers": dict(n_crashes=0, n_stragglers=3, max_dilation=8.0,
                       rollback_s=0.0005),
}


def make_trace(seed=0, **overrides):
    return generate_traffic(seed=seed, **dict(TRAFFIC, **overrides))


def horizon_of(trace):
    return max(r.arrival_s for r in trace)


def run_chaos(trace, faults=None, hedge=None, n_chips=4, **kwargs):
    return simulate_service(
        trace,
        ServeCluster(n_chips),
        cache=stub_cache(),
        batcher=PipelineBatcher(),
        faults=faults,
        hedge=hedge,
        **kwargs,
    )


def serialized(report):
    return json.dumps(report.to_dict(), sort_keys=True)


def outage_spans(plan, horizon_s):
    """Known-down intervals per chip id (permanent == to the horizon)."""
    spans = {}
    for crash in plan.crashes:
        end = crash.recover_at_s
        if end == float("inf"):
            end = horizon_s * 10  # effectively forever for this run
        spans.setdefault(crash.chip_id, []).append((crash.at_s, end))
    return spans


def assert_chaos_invariants(report, trace, plan=None):
    eps = 1e-9
    trace_ids = {r.request_id for r in trace}

    # -- exactly-once ---------------------------------------------------
    served_ids = [r.request.request_id for r in report.responses]
    assert len(set(served_ids)) == len(served_ids), \
        "request answered twice (re-queue or hedge duplicate leaked)"
    assert all(i >= 0 for i in served_ids), \
        "hedge-clone id (negative) reached the report"
    assert set(served_ids) <= trace_ids, "response invented a request"

    # -- conservation ---------------------------------------------------
    shed_ids = {s.request.request_id for s in report.shed}
    failed_ids = {f.request.request_id for f in report.failed}
    assert not set(served_ids) & shed_ids, "request both served and shed"
    assert not set(served_ids) & failed_ids, "request both served and failed"
    assert not shed_ids & failed_ids, "request both shed and failed"
    assert len(served_ids) + len(shed_ids) + len(failed_ids) == len(trace), \
        "requests lost or invented"
    assert report.n_offered == len(trace)
    assert report.n_offered == report.n_requests + report.n_shed \
        + report.n_failed

    # -- causality ------------------------------------------------------
    spans = outage_spans(plan, horizon_of(trace)) if plan is not None else {}
    by_chip = {}
    for r in report.responses:
        assert r.finish_s > r.start_s, "response finished before it started"
        assert r.start_s >= r.request.arrival_s - eps, \
            "response started before its request arrived"
        for at_s, end_s in spans.get(r.chip_id, ()):
            assert not (at_s - eps < r.start_s < end_s - eps), \
                f"chip {r.chip_id} started a frame mid-outage"
        by_chip.setdefault(r.chip_id, []).append(r)

    # -- work ledger ----------------------------------------------------
    # busy time == service of the responses the chip *won*, plus the
    # chip time burned on crash-aborted frames and losing hedge copies.
    for chip in report.chips:
        won = sum(r.service_s for r in by_chip.get(chip.chip_id, []))
        assert chip.busy_s == pytest.approx(won + chip.lost_work_s, abs=eps)
    assert report.total_chip_seconds >= sum(
        c.busy_s for c in report.chips) - 1e-6


class TestRandomizedFaultPlans:
    @pytest.mark.parametrize("shape", sorted(PLAN_SHAPES))
    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("hedged", [False, True],
                             ids=["bare", "hedged"])
    def test_chaos_invariants(self, shape, seed, hedged):
        trace = make_trace(seed=seed)
        plan = FaultPlan.seeded(seed=seed * 7 + 1, n_chips=4,
                                horizon_s=horizon_of(trace),
                                **PLAN_SHAPES[shape])
        report = run_chaos(trace, faults=plan, hedge=HEDGE if hedged else None)
        assert_chaos_invariants(report, trace, plan)

    @pytest.mark.parametrize("seed", range(6))
    def test_reports_are_bit_deterministic(self, seed):
        trace = make_trace(seed=seed)
        plan = FaultPlan.seeded(seed=seed + 100, n_chips=4,
                                horizon_s=horizon_of(trace),
                                n_crashes=2, n_stragglers=2,
                                rollback_s=0.001)
        first = run_chaos(make_trace(seed=seed), faults=plan, hedge=HEDGE)
        second = run_chaos(trace, faults=plan, hedge=HEDGE)
        assert serialized(first) == serialized(second)

    def test_crashes_actually_happened(self):
        # The matrix is vacuous if the plans never hit anything: on the
        # storm shape at least one seed must crash, re-queue, and dilate.
        hits = requeues = 0
        for seed in range(12):
            trace = make_trace(seed=seed)
            plan = FaultPlan.seeded(seed=seed * 7 + 1, n_chips=4,
                                    horizon_s=horizon_of(trace),
                                    **PLAN_SHAPES["storm"])
            report = run_chaos(trace, faults=plan)
            stats = report.fault_stats
            hits += stats["n_crashes"]
            requeues += stats["n_requeued"]
        assert hits > 0, "no seeded crash ever fired inside the run"
        assert requeues > 0, "no crash ever stranded queued work"

    def test_hedging_actually_fired(self):
        fired = wins = 0
        for seed in range(12):
            trace = make_trace(seed=seed)
            plan = FaultPlan.seeded(seed=seed * 7 + 1, n_chips=4,
                                    horizon_s=horizon_of(trace),
                                    **PLAN_SHAPES["stragglers"])
            report = run_chaos(trace, faults=plan, hedge=HEDGE)
            fired += report.hedge_stats["n_hedged"]
            wins += report.hedge_stats["n_wins"]
        assert fired > 0, "the hedge threshold never triggered"
        assert wins > 0, "no hedge clone ever won a race"


class TestEmptyPlanNeutrality:
    def test_empty_plan_is_byte_identical_to_no_plan(self):
        trace = make_trace(seed=3)
        bare = run_chaos(make_trace(seed=3))
        attached = run_chaos(trace, faults=FaultPlan())
        assert serialized(bare) == serialized(attached)

    def test_hedge_without_faults_preserves_invariants(self):
        # Hedging on a healthy overloaded fleet must stay exactly-once.
        trace = make_trace(seed=5, rate_rps=12000.0)
        report = run_chaos(trace, hedge=HEDGE)
        assert_chaos_invariants(report, trace)


class TestFleetLoss:
    def test_total_permanent_loss_fails_the_backlog(self):
        trace = make_trace(seed=1)
        cut = horizon_of(trace) * 0.3
        plan = FaultPlan(crashes=[ChipCrash(0, cut, None),
                                  ChipCrash(1, cut * 1.1, None)])
        report = run_chaos(trace, faults=plan, n_chips=2)
        assert report.n_failed > 0, "dead fleet should strand the backlog"
        assert_chaos_invariants(report, trace, plan)
        assert all(f.reason == "fleet-lost" for f in report.failed)
        # Failed records drain deterministically: arrival order, no dups.
        arrivals = [f.request.arrival_s for f in report.failed]
        assert arrivals == sorted(arrivals)
        stats = report.fault_stats
        assert stats["n_failed"] == report.n_failed
        assert stats["n_permanent"] == 2
        assert stats["mean_recovery_s"] is None
        assert report.fleet_availability < 1.0

    def test_recovered_outage_serves_everything(self):
        trace = make_trace(seed=2)
        h = horizon_of(trace)
        plan = FaultPlan(crashes=[ChipCrash(0, h * 0.2, h * 0.3)],
                         rollback_s=0.0005)
        report = run_chaos(trace, faults=plan, n_chips=3)
        assert report.n_failed == 0
        assert report.n_requests == len(trace)
        assert_chaos_invariants(report, trace, plan)
        stats = report.fault_stats
        assert stats["n_crashes"] == 1
        assert stats["n_recoveries"] == 1
        assert stats["mean_recovery_s"] == pytest.approx(h * 0.3)


class TestPlanSemantics:
    def test_next_crash_is_strictly_after(self):
        plan = FaultPlan(crashes=[ChipCrash(0, 0.1, 0.05),
                                  ChipCrash(0, 0.3, None)])
        assert plan.next_crash(0, 0.0).at_s == 0.1
        assert plan.next_crash(0, 0.1).at_s == 0.3  # strict: not itself
        assert plan.next_crash(0, 0.3) is None
        assert plan.next_crash(1, 0.0) is None

    def test_overlapping_stragglers_multiply(self):
        plan = FaultPlan(stragglers=[StragglerWindow(2, 0.0, 1.0, 2.0),
                                     StragglerWindow(2, 0.5, 1.5, 3.0)])
        assert plan.dilation(2, 0.25) == 2.0
        assert plan.dilation(2, 0.75) == 6.0
        assert plan.dilation(2, 1.25) == 3.0
        assert plan.dilation(2, 1.5) == 1.0   # end is exclusive
        assert plan.dilation(0, 0.75) == 1.0

    def test_compile_stalls_dilate_issue_time(self):
        plan = FaultPlan(compile_stalls=[CompileStall(0.0, 0.5, 4.0)])
        assert plan.compile_dilation(0.25) == 4.0
        assert plan.compile_dilation(0.5) == 1.0

    def test_seeded_plans_are_deterministic_and_valid(self):
        a = FaultPlan.seeded(7, n_chips=4, horizon_s=1.0, n_crashes=6,
                             n_stragglers=3, n_stalls=2)
        b = FaultPlan.seeded(7, n_chips=4, horizon_s=1.0, n_crashes=6,
                             n_stragglers=3, n_stalls=2)
        assert a.to_dict() == b.to_dict()
        # Same-chip outages never overlap (the constructor would raise).
        assert len(a.crashes) >= 1

    def test_overlapping_outages_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(crashes=[ChipCrash(0, 0.1, 0.2), ChipCrash(0, 0.2)])

    @pytest.mark.parametrize("bad", [
        lambda: ChipCrash(-1, 0.1),
        lambda: ChipCrash(0, -0.1),
        lambda: ChipCrash(0, 0.1, 0.0),
        lambda: StragglerWindow(0, 0.5, 0.5, 2.0),
        lambda: StragglerWindow(0, 0.0, 1.0, 0.5),
        lambda: CompileStall(1.0, 0.5, 2.0),
        lambda: FaultPlan(rollback_s=-1.0),
        lambda: HedgePolicy(quantile=1.0),
        lambda: HedgePolicy(multiplier=0.0),
        lambda: HedgePolicy(min_samples=1),
        lambda: HedgePolicy(window=8, min_samples=16),
    ])
    def test_validation_rejects_bad_values(self, bad):
        with pytest.raises(ConfigError):
            bad()


class TestSpecParsing:
    def test_literal_spec_round_trips(self):
        plan = FaultPlan.parse(
            "crash=1@0.05+0.04;crash=0@0.2;slow=2@0.0-0.5x4;"
            "stall=0.1-0.2x3;rollback=0.002")
        assert plan.crashes == (ChipCrash(1, 0.05, 0.04), ChipCrash(0, 0.2))
        assert plan.stragglers == (StragglerWindow(2, 0.0, 0.5, 4.0),)
        assert plan.compile_stalls == (CompileStall(0.1, 0.2, 3.0),)
        assert plan.rollback_s == 0.002

    def test_seeded_spec_matches_direct_call(self):
        parsed = FaultPlan.parse(
            "seeded:seed=9,chips=4,horizon=0.5,crashes=2,stragglers=1")
        direct = FaultPlan.seeded(9, n_chips=4, horizon_s=0.5, n_crashes=2,
                                  n_stragglers=1)
        assert parsed.to_dict() == direct.to_dict()

    @pytest.mark.parametrize("spec", [
        "", "explode=1", "crash=1", "crash=a@b", "slow=1@x4",
        "seeded:seed=1", "seeded:unknown=2,chips=1,horizon=1",
    ])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)
