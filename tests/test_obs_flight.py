"""Flight recorder: triggers, cooldown, and frozen dump artifacts."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs import FlightRecorder, MetricsRegistry, Tracer


def loaded_tracer(n=40):
    tracer = Tracer()
    for i in range(n):
        tracer.instant(i * 0.001, f"e{i}", "test", ("fleet", 0))
    return tracer


class TestTriggers:
    def test_shed_burst_fires_inside_window(self):
        rec = FlightRecorder(shed_burst=3, burst_window_s=0.010)
        assert rec.note_shed(0.000) is None
        assert rec.note_shed(0.004) is None
        reason = rec.note_shed(0.008)
        assert reason is not None and "shed-burst" in reason

    def test_slow_trickle_of_sheds_never_fires(self):
        rec = FlightRecorder(shed_burst=3, burst_window_s=0.010)
        assert all(rec.note_shed(i * 1.0) is None for i in range(20))

    def test_slo_breach_fires_when_window_dips(self):
        rec = FlightRecorder(slo_window=10, slo_floor=0.5)
        for i in range(10):
            assert rec.note_completion(i * 0.01, True) is None
        reasons = [rec.note_completion(1.0 + i * 0.01, False)
                   for i in range(10)]
        fired = [r for r in reasons if r is not None]
        assert fired and "slo-breach" in fired[0]

    def test_slo_window_needs_to_fill_first(self):
        rec = FlightRecorder(slo_window=50, slo_floor=0.9)
        # 10 straight misses, but the window is not full yet.
        assert all(rec.note_completion(i * 0.01, False) is None
                   for i in range(10))


class TestCapture:
    def test_dump_freezes_tail_and_metrics(self):
        rec = FlightRecorder(last_n=8)
        reg = MetricsRegistry()
        reg.counter("n").inc(5)
        dump = rec.capture(1.0, "test-trigger", tracer=loaded_tracer(),
                           metrics=reg)
        assert dump["reason"] == "test-trigger"
        assert dump["n_events"] == 8
        assert [e["name"] for e in dump["events"]][-1] == "e39"
        assert dump["metrics"]["n"] == 5

    def test_cooldown_suppresses_back_to_back_dumps(self):
        rec = FlightRecorder(cooldown_s=0.2)
        assert rec.capture(1.0, "a") is not None
        assert rec.capture(1.1, "b") is None          # still cooling
        assert rec.capture(1.3, "c") is not None      # cooled down
        assert [d["reason"] for d in rec.dumps] == ["a", "c"]
        assert rec.n_triggers == 3

    def test_max_dumps_bounds_memory(self):
        rec = FlightRecorder(cooldown_s=0.0, max_dumps=2)
        for i in range(5):
            rec.capture(float(i), f"r{i}")
        assert len(rec.dumps) == 2

    def test_save_writes_json_artifact(self, tmp_path):
        rec = FlightRecorder()
        rec.capture(1.0, "boom", tracer=loaded_tracer(4))
        path = rec.save(tmp_path / "dump.flight.json")
        obj = json.loads(path.read_text())
        assert obj["n_dumps"] == 1
        assert obj["dumps"][0]["reason"] == "boom"
        assert len(obj["dumps"][0]["events"]) == 4


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"last_n": 0},
        {"shed_burst": 0},
        {"slo_window": 0},
        {"burst_window_s": 0.0},
        {"cooldown_s": -1.0},
        {"slo_floor": 0.0},
        {"slo_floor": 1.5},
        {"max_dumps": 0},
    ])
    def test_bad_config_raises(self, kwargs):
        with pytest.raises(ConfigError):
            FlightRecorder(**kwargs)
