"""Durability of every on-disk artifact.

Every artifact the simulator writes — trace libraries, Chrome traces,
metric exports, flight-recorder dumps — goes through
:func:`repro.persist.atomic_write_text`: staged to a temp file in the
target directory, fsynced, and renamed over the target. These tests pin
the guarantees that function (and the trace library's flock-guarded
merge-on-save built on it) makes: a crash mid-save leaves the previous
artifact intact, two concurrent writers lose neither's hits, and
``save -> load -> save`` is byte-stable.

Also here: the lifetime-hits regression (a trace hit and then evicted
mid-run must not vanish from the library) and the ``from err`` chaining
contract of every artifact/spec parser.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigError
from repro.persist import atomic_write_text, locked
from repro.serve import TraceCache, TraceLibrary, TraceRecord
from repro.serve.cluster import parse_fleet_spec
from repro.serve.traffic import parse_tenant_spec

from tests.test_serve_federation import stub_compile

_KEY_A = ("lego", "hashgrid", 64, 64)
_KEY_B = ("room", "gaussian", 64, 64)


def library_with(key, hits):
    scene, pipeline, width, height = key
    return TraceLibrary([TraceRecord(
        scene=scene, pipeline=pipeline, width=width, height=height,
        invocations=3, pixels=4096, compile_s=0.001, hits=hits)])


# ----------------------------------------------------------------------
# atomic_write_text
# ----------------------------------------------------------------------
class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "one")
        assert path.read_text() == "one"
        atomic_write_text(path, "two")
        assert path.read_text() == "two"

    def test_no_temp_litter_on_success(self, tmp_path):
        atomic_write_text(tmp_path / "artifact.json", "payload")
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_crash_mid_save_keeps_previous_bytes(self, tmp_path,
                                                 monkeypatch):
        path = tmp_path / "artifact.json"
        atomic_write_text(path, "previous")

        def boom(src, dst):
            raise OSError("kill -9 between write and rename")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="kill -9"):
            atomic_write_text(path, "half-written garbage")
        monkeypatch.undo()
        assert path.read_text() == "previous"
        # The staged temp file was cleaned up, not left as litter.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]

    def test_locked_is_reentrant_per_path_family(self, tmp_path):
        # Two sequential critical sections on one artifact: the sidecar
        # lock must not deadlock or leak state between them.
        path = tmp_path / "artifact.json"
        for text in ("a", "b"):
            with locked(path):
                atomic_write_text(path, text)
        assert path.read_text() == "b"


# ----------------------------------------------------------------------
# Trace-library durability
# ----------------------------------------------------------------------
class TestLibraryDurability:
    def test_save_load_save_is_byte_stable(self, tmp_path):
        cache = TraceCache(capacity=8, compile_fn=stub_compile)
        for key in (_KEY_A, _KEY_B, _KEY_A):
            cache.get(key)
        library = TraceLibrary()
        library.absorb(cache)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        library.save(first)
        TraceLibrary.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_merge_save_matches_plain_save_for_single_writer(self,
                                                             tmp_path):
        plain = tmp_path / "plain.json"
        merged = tmp_path / "merged.json"
        library_with(_KEY_A, hits=5).save(plain)
        loaded = TraceLibrary.load(plain)
        loaded.absorb(TraceCache(capacity=1), run_hits={_KEY_A: 2})
        loaded.save(merged, merge=True)
        loaded2 = TraceLibrary.load(plain)
        loaded2.absorb(TraceCache(capacity=1), run_hits={_KEY_A: 2})
        loaded2.save(plain)
        assert plain.read_bytes() == merged.read_bytes()
        assert TraceLibrary.load(merged).get(_KEY_A).hits == 7

    def test_kill_mid_save_leaves_previous_library_intact(self, tmp_path,
                                                          monkeypatch):
        path = tmp_path / "library.json"
        library_with(_KEY_A, hits=5).save(path)
        before = path.read_bytes()

        library = TraceLibrary.load(path)
        library.absorb(TraceCache(capacity=1), run_hits={_KEY_A: 3})

        def boom(src, dst):
            raise OSError("power loss")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="power loss"):
            library.save(path, merge=True)
        monkeypatch.undo()
        # The artifact still parses and still holds the previous state.
        assert path.read_bytes() == before
        assert TraceLibrary.load(path).get(_KEY_A).hits == 5
        # Retrying after the "reboot" lands the update.
        library.save(path, merge=True)
        assert TraceLibrary.load(path).get(_KEY_A).hits == 8

    def test_concurrent_merge_saves_lose_neither_writers_hits(self,
                                                              tmp_path):
        # Two processes load the same artifact, accumulate hits
        # independently, and save concurrently: the merge folds each
        # writer's *delta* onto disk, so the interleaving that loses
        # the first writer's update with bare save() cannot happen.
        path = tmp_path / "library.json"
        library_with(_KEY_A, hits=10).save(path)
        one = TraceLibrary.load(path)
        two = TraceLibrary.load(path)
        one.absorb(TraceCache(capacity=1), run_hits={_KEY_A: 5})
        two.absorb(TraceCache(capacity=1), run_hits={_KEY_A: 7})
        one.save(path, merge=True)
        two.save(path, merge=True)
        assert TraceLibrary.load(path).get(_KEY_A).hits == 22

    def test_repeated_merge_saves_are_idempotent(self, tmp_path):
        path = tmp_path / "library.json"
        library_with(_KEY_A, hits=10).save(path)
        library = TraceLibrary.load(path)
        library.absorb(TraceCache(capacity=1), run_hits={_KEY_A: 5})
        library.save(path, merge=True)
        once = path.read_bytes()
        library.save(path, merge=True)
        assert path.read_bytes() == once
        assert TraceLibrary.load(path).get(_KEY_A).hits == 15

    def test_merge_save_keeps_disk_only_keys(self, tmp_path):
        path = tmp_path / "library.json"
        library_with(_KEY_A, hits=2).save(path)
        other = library_with(_KEY_B, hits=4)
        other.save(path, merge=True)
        final = TraceLibrary.load(path)
        assert final.get(_KEY_A).hits == 2
        assert final.get(_KEY_B).hits == 4

    def test_two_process_stress_conserves_every_hit(self, tmp_path):
        # The real thing: two interpreters hammer one shared library
        # path with absorb+merge-save loops at once. The sidecar flock
        # serializes read-merge-write, so the final artifact holds the
        # sum of every iteration from both writers.
        path = tmp_path / "library.json"
        library_with(_KEY_A, hits=0).save(path)
        script = (
            "import sys\n"
            "from repro.serve import TraceCache, TraceLibrary\n"
            "path = sys.argv[1]\n"
            "key = ('lego', 'hashgrid', 64, 64)\n"
            "for _ in range(25):\n"
            "    library = TraceLibrary.load(path)\n"
            "    library.absorb(TraceCache(capacity=1), run_hits={key: 1})\n"
            "    library.save(path, merge=True)\n"
        )
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen([sys.executable, "-c", script, str(path)],
                             env=env, stderr=subprocess.PIPE)
            for _ in range(2)
        ]
        for proc in workers:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        assert TraceLibrary.load(path).get(_KEY_A).hits == 50

    def test_load_missing_path_is_an_empty_library(self, tmp_path):
        assert len(TraceLibrary.load(tmp_path / "absent.json")) == 0


# ----------------------------------------------------------------------
# Lifetime hits survive eviction (the lost-update absorb bug)
# ----------------------------------------------------------------------
class TestEvictedHitsSurvive:
    def test_hit_then_evicted_key_keeps_its_lifetime_hits(self):
        cache = TraceCache(capacity=1, compile_fn=stub_compile)
        cache.get(_KEY_A)             # compile
        cache.get(_KEY_A)             # demand hit
        cache.get(_KEY_B)             # evicts A
        assert _KEY_A not in cache
        library = TraceLibrary()
        library.absorb(cache)
        record = library.get(_KEY_A)
        assert record is not None
        assert record.hits == 1
        # The eviction-time metadata carried the program shape too.
        program = stub_compile(_KEY_A)
        assert record.invocations == len(program.invocations)
        assert record.pixels == program.pixels
        assert library.get(_KEY_B) is not None

    def test_unhit_evicted_key_is_not_recorded(self):
        cache = TraceCache(capacity=1, compile_fn=stub_compile)
        cache.get(_KEY_A)             # compile, never hit
        cache.get(_KEY_B)             # evicts A
        library = TraceLibrary()
        library.absorb(cache)
        assert library.get(_KEY_A) is None

    def test_readmission_clears_the_eviction_metadata(self):
        cache = TraceCache(capacity=1, compile_fn=stub_compile)
        cache.get(_KEY_A)
        cache.get(_KEY_B)             # evicts A
        assert _KEY_A in cache.evicted_meta
        cache.get(_KEY_A)             # recompiled and resident again
        assert _KEY_A not in cache.evicted_meta

    def test_evicted_hits_round_trip_through_the_artifact(self, tmp_path):
        cache = TraceCache(capacity=1, compile_fn=stub_compile)
        cache.get(_KEY_A)
        cache.get(_KEY_A)
        cache.get(_KEY_B)
        library = TraceLibrary()
        library.absorb(cache)
        path = tmp_path / "library.json"
        library.save(path)
        assert TraceLibrary.load(path).get(_KEY_A).hits == 1


# ----------------------------------------------------------------------
# Parser error chaining: the original cause rides on every ConfigError
# ----------------------------------------------------------------------
class TestErrorChaining:
    def test_trace_record_from_dict_chains(self):
        with pytest.raises(ConfigError,
                           match="malformed trace-library entry") as info:
            TraceRecord.from_dict({"scene": "lego"})
        assert isinstance(info.value.__cause__, KeyError)

    def test_library_load_chains_json_errors(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="not valid JSON") as info:
            TraceLibrary.load(path)
        assert isinstance(info.value.__cause__, json.JSONDecodeError)

    def test_fleet_spec_chains(self):
        with pytest.raises(ConfigError, match="bad fleet-spec count") as info:
            parse_fleet_spec("many*1x1")
        assert isinstance(info.value.__cause__, ValueError)
        with pytest.raises(ConfigError, match="bad fleet-spec entry") as info:
            parse_fleet_spec("2xfour")
        assert isinstance(info.value.__cause__, ValueError)

    def test_tenant_spec_chains(self):
        with pytest.raises(ConfigError, match="is not a number") as info:
            parse_tenant_spec("premium:weight=heavy")
        assert isinstance(info.value.__cause__, ValueError)
