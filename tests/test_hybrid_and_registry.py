"""Tests for the MixRT hybrid and the top-level renderer registry."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.renderers import (
    PIPELINE_BUILDERS,
    PIPELINE_RENDERERS,
    build_representation,
    clear_representation_cache,
    make_renderer,
    render_scene,
)
from repro.renderers.hybrid import MixRTRenderer, build_mixrt_model
from repro.scenes import Camera, get_scene, orbit_poses


@pytest.fixture(scope="module")
def mixrt_model():
    field = get_scene("lego").field()
    return build_mixrt_model(
        field,
        mesh_quality=0.5,
        mesh_train_steps=20,
        hash_levels=4,
        hash_train_steps=30,
        samples_per_ray=32,
    )


class TestMixRT:
    def test_storage_sums_layers(self, mixrt_model):
        assert mixrt_model.storage_bytes() == (
            mixrt_model.mesh.storage_bytes() + mixrt_model.hashgrid.storage_bytes()
        )

    def test_render_merges_stats(self, mixrt_model, lego_field, lego_camera):
        renderer = MixRTRenderer(mixrt_model, lego_field)
        image, stats = renderer.render(lego_camera)
        assert image.shape == (32, 32, 3)
        # Both halves contribute counters.
        assert stats.get("tris_projected") > 0, "mesh half missing"
        assert stats.get("hash_lookups") > 0, "volume half missing"

    def test_depth_stop_reduces_volume_work(self, mixrt_model, lego_field, lego_camera):
        from repro.renderers.hashgrid import HashGridRenderer

        plain = HashGridRenderer(mixrt_model.hashgrid, lego_field)
        _, plain_stats = plain.render(lego_camera)
        hybrid = MixRTRenderer(mixrt_model, lego_field)
        _, hybrid_stats = hybrid.render(lego_camera)
        assert hybrid_stats.get("samples_shaded") <= plain_stats.get("samples_shaded")


class TestRegistry:
    def test_all_six_pipelines_registered(self):
        assert set(PIPELINE_BUILDERS) == {
            "mesh", "mlp", "lowrank", "hashgrid", "gaussian", "mixrt",
        }
        assert set(PIPELINE_RENDERERS) == set(PIPELINE_BUILDERS)

    def test_unknown_pipeline_raises(self):
        with pytest.raises(SceneError):
            build_representation("lego", "raytracing")

    def test_build_representation_caches(self):
        clear_representation_cache()
        a = build_representation("lego", "gaussian", n_gaussians=500)
        b = build_representation("lego", "gaussian", n_gaussians=500)
        assert a is b
        c = build_representation("lego", "gaussian", n_gaussians=600)
        assert c is not a

    def test_cache_bypass(self):
        a = build_representation("lego", "gaussian", cache=False, n_gaussians=500)
        b = build_representation("lego", "gaussian", cache=False, n_gaussians=500)
        assert a is not b

    def test_make_renderer_pipeline_tags(self):
        renderer = make_renderer("lego", "gaussian", n_gaussians=500)
        assert renderer.pipeline == "gaussian"

    def test_render_scene_end_to_end(self):
        image, stats = render_scene(
            "lego", pipeline="gaussian", size=(24, 24), n_gaussians=500
        )
        assert image.shape == (24, 24, 3)
        assert stats.get("pixels") == 24 * 24

    def test_render_scene_respects_view(self):
        kwargs = dict(pipeline="gaussian", size=(16, 16), n_gaussians=500)
        img0, _ = render_scene("lego", view=0, **kwargs)
        img1, _ = render_scene("lego", view=3, **kwargs)
        assert not np.allclose(img0, img1)
