"""Tests for device models, support matrices, and metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices import (
    COMMERCIAL_DEVICES,
    DEDICATED_ACCELERATORS,
    DEVICES,
    SUPPORT_MATRIX_TABLE_VI,
    get_device,
    supported_pipelines,
)
from repro.errors import ConfigError, UnsupportedPipelineError
from repro.metrics import (
    energy_efficiency_ratio,
    geometric_mean,
    mse,
    psnr,
    speedup,
    ssim_global,
)


class TestDeviceRegistry:
    def test_paper_device_set(self):
        assert set(COMMERCIAL_DEVICES) == {"8Gen2", "Xavier NX", "Orin NX", "AMD 780M"}
        assert set(DEDICATED_ACCELERATORS) == {"Instant-3D", "RT-NeRF", "MetaVRain"}

    def test_unknown_device(self):
        with pytest.raises(ConfigError):
            get_device("H100")

    def test_commercial_devices_support_all_pipelines(self):
        for name in COMMERCIAL_DEVICES:
            assert supported_pipelines(name) == (
                "mesh", "mlp", "lowrank", "hashgrid", "gaussian",
            )

    def test_dedicated_devices_support_one(self):
        assert supported_pipelines("Instant-3D") == ("hashgrid",)
        assert supported_pipelines("RT-NeRF") == ("lowrank",)
        assert supported_pipelines("MetaVRain") == ("mlp",)

    def test_unsupported_pipeline_raises(self):
        with pytest.raises(UnsupportedPipelineError) as err:
            get_device("MetaVRain").fps("room", "gaussian", 1280, 720)
        assert err.value.device == "MetaVRain"
        assert err.value.pipeline == "gaussian"

    def test_fps_scales_inverse_with_pixels(self):
        device = get_device("Orin NX")
        full = device.fps("room", "mesh", 1280, 720)
        quarter = device.fps("room", "mesh", 640, 360)
        assert quarter == pytest.approx(4 * full)

    def test_complex_scenes_slower(self):
        device = get_device("Orin NX")
        room = device.fps("room", "mesh", 1280, 720)     # complexity 1.0
        kitchen = device.fps("kitchen", "mesh", 1280, 720)  # complexity 1.6
        assert kitchen < room

    def test_energy_per_frame(self):
        device = get_device("Orin NX")
        fps = device.fps("room", "mesh", 1280, 720)
        assert device.energy_per_frame_j("room", "mesh", 1280, 720) == pytest.approx(
            device.power_w / fps
        )

    def test_table1_orin_bounds_respected(self):
        """Table I: Orin NX is at most 20 / 0.2 / 10 / 1 / 5 FPS."""
        device = get_device("Orin NX")
        bounds = {"mesh": 20, "mlp": 0.2, "lowrank": 10, "hashgrid": 1, "gaussian": 5}
        for pipeline, bound in bounds.items():
            fps = device.fps("room", pipeline, 1280, 720)
            assert fps <= bound * 1.05, pipeline


class TestSupportMatrixTableVI:
    def test_npus_only_mlp(self):
        for name in ("Flexagon (NPU)", "STIFT (NPU)", "SIGMA (NPU)", "Eyeriss (NPU)"):
            row = SUPPORT_MATRIX_TABLE_VI[name]
            assert row["mlp"] and not any(
                row[p] for p in ("mesh", "lowrank", "hashgrid", "gaussian")
            )

    def test_cgra_adds_lowrank(self):
        row = SUPPORT_MATRIX_TABLE_VI["Plasticine (CGRA)"]
        assert row["mlp"] and row["lowrank"] and not row["hashgrid"]

    def test_ours_supports_everything(self):
        row = SUPPORT_MATRIX_TABLE_VI["Uni-Render (ours)"]
        assert all(row.values())


class TestQualityMetrics:
    def test_psnr_of_identical_is_infinite(self):
        img = np.random.default_rng(0).uniform(size=(8, 8, 3))
        assert psnr(img, img) == float("inf")

    def test_psnr_known_value(self):
        a = np.zeros((4, 4, 3))
        b = np.full((4, 4, 3), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_mse_shape_mismatch(self):
        with pytest.raises(ConfigError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_ssim_identity_is_one(self):
        img = np.random.default_rng(1).uniform(size=(16, 16, 3))
        assert ssim_global(img, img) == pytest.approx(1.0)

    def test_ssim_penalizes_noise(self):
        rng = np.random.default_rng(2)
        img = rng.uniform(size=(16, 16, 3))
        noisy = np.clip(img + rng.normal(0, 0.2, img.shape), 0, 1)
        assert ssim_global(noisy, img) < 0.99


class TestPerfMetrics:
    def test_speedup(self):
        assert speedup(30.0, 10.0) == 3.0
        with pytest.raises(ConfigError):
            speedup(0.0, 1.0)

    def test_energy_efficiency(self):
        # Twice the FPS at half the power = 4x the efficiency.
        assert energy_efficiency_ratio(60, 5, 30, 10) == pytest.approx(4.0)

    def test_geometric_mean_basics(self):
        assert geometric_mean([4.0, 1.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigError):
            geometric_mean([])
        with pytest.raises(ConfigError):
            geometric_mean([1.0, -2.0])

    @given(st.lists(st.floats(0.01, 100.0), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_geomean_between_min_and_max(self, values):
        g = geometric_mean(values)
        assert min(values) - 1e-9 <= g <= max(values) + 1e-9
