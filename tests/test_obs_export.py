"""Exporters: Chrome trace-event JSON schema and metrics timelines.

The end-to-end class replays a two-tenant preemption scenario with a
compile-worker pool under a full observer and checks the exported trace
the way Perfetto would read it: batch spans on per-chip tracks, compile
spans on per-worker tracks, preemption markers, and a schema-valid
event stream (the acceptance bar for ``--trace-out`` artifacts).
"""

import json

import pytest

from repro.errors import ObsError
from repro.obs import (
    MetricsRegistry,
    Observer,
    Tracer,
    chrome_trace,
    load_chrome_trace,
    metrics_csv,
    save_chrome_trace,
    save_metrics,
    summarize_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.export import TRACK_PIDS
from repro.serve import (
    PipelineBatcher,
    ServeCluster,
    TenantClass,
    TraceCache,
    generate_tenant_traffic,
    make_admission_policy,
    simulate_service,
)
from tests.test_serve_golden import stub_program


def small_tracer():
    tracer = Tracer()
    tracer.instant(0.001, "arrival", "request", ("tier", 0),
                   {"request_id": 1})
    tracer.span(0.002, 0.004, "batch hashgrid", "batch", ("chip", 1),
                {"size": 2})
    tracer.span(0.001, 0.003, "compile mesh", "compile", ("worker", 0))
    return tracer


class TestChromeTrace:
    def test_event_shapes_and_units(self):
        obj = chrome_trace(small_tracer())
        events = {e["name"]: e for e in obj["traceEvents"]
                  if e["ph"] != "M"}
        arrival = events["arrival"]
        assert arrival["ph"] == "i" and arrival["s"] == "t"
        assert arrival["ts"] == pytest.approx(1000.0)  # seconds -> us
        batch = events["batch hashgrid"]
        assert batch["ph"] == "X"
        assert batch["dur"] == pytest.approx(2000.0)
        assert batch["pid"] == TRACK_PIDS["chip"] and batch["tid"] == 1
        compile_ = events["compile mesh"]
        assert compile_["pid"] == TRACK_PIDS["worker"]

    def test_metadata_names_every_seen_track(self):
        obj = chrome_trace(small_tracer())
        meta = [e for e in obj["traceEvents"] if e["ph"] == "M"]
        named = {(e["pid"], e.get("tid")) for e in meta
                 if e["name"] == "thread_name"}
        assert (TRACK_PIDS["chip"], 1) in named
        assert (TRACK_PIDS["worker"], 0) in named

    def test_counter_events_come_from_metrics_timeline(self):
        reg = MetricsRegistry()
        reg.counter("engine.arrivals").inc(3)
        reg.snapshot(0.002)
        obj = chrome_trace(small_tracer(), metrics=reg)
        counters = [e for e in obj["traceEvents"] if e["ph"] == "C"]
        assert counters
        names = {e["name"] for e in counters}
        assert "engine.arrivals" in names

    def test_validate_accepts_own_output(self):
        assert validate_chrome_trace(chrome_trace(small_tracer())) > 0

    def test_roundtrip_through_disk(self, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(small_tracer(), path)
        obj = load_chrome_trace(path)
        assert obj["displayTimeUnit"] == "ms"
        assert obj["otherData"]["recorded"] == 3

    def test_summary_mentions_events_and_tracks(self):
        text = summarize_chrome_trace(chrome_trace(small_tracer()))
        assert "trace events" in text
        assert "batch hashgrid" in text
        assert "chip 1" in text


class TestValidation:
    def test_rejects_non_dict(self):
        with pytest.raises(ObsError):
            validate_chrome_trace([])

    def test_rejects_empty_event_list(self):
        with pytest.raises(ObsError):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_bad_phase(self):
        obj = chrome_trace(small_tracer())
        obj["traceEvents"][0]["ph"] = "Z"
        with pytest.raises(ObsError):
            validate_chrome_trace(obj)

    def test_rejects_span_without_duration(self):
        obj = chrome_trace(small_tracer())
        for event in obj["traceEvents"]:
            if event["ph"] == "X":
                del event["dur"]
        with pytest.raises(ObsError):
            validate_chrome_trace(obj)

    def test_rejects_negative_timestamp(self):
        obj = chrome_trace(small_tracer())
        obj["traceEvents"][-1]["ts"] = -1.0
        with pytest.raises(ObsError):
            validate_chrome_trace(obj)

    def test_load_missing_file_is_obs_error(self, tmp_path):
        with pytest.raises(ObsError):
            load_chrome_trace(tmp_path / "nope.json")

    def test_load_malformed_json_is_obs_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ObsError):
            load_chrome_trace(path)


class TestMetricsExport:
    def make_registry(self):
        reg = MetricsRegistry()
        c = reg.counter("n")
        reg.histogram("lat").observe(4.0)
        c.inc()
        reg.snapshot(0.01)
        c.inc(2)
        reg.snapshot(0.02)
        return reg

    def test_csv_has_t_s_first_and_one_row_per_snapshot(self):
        text = metrics_csv(self.make_registry())
        lines = text.strip().splitlines()
        assert lines[0].startswith("t_s,")
        assert len(lines) == 3

    def test_save_picks_format_by_suffix(self, tmp_path):
        reg = self.make_registry()
        csv_path = save_metrics(reg, tmp_path / "m.csv")
        json_path = save_metrics(reg, tmp_path / "m.json")
        assert csv_path.read_text().startswith("t_s,")
        rows = json.loads(json_path.read_text())
        assert [row["t_s"] for row in rows] == [0.01, 0.02]
        assert rows[1]["n"] == 3


class TestEndToEndScenario:
    """The acceptance scenario: tenants + preemption + compile pool."""

    @pytest.fixture(scope="class")
    def traced_run(self):
        premium = TenantClass("premium", slo_multiplier=1.0, weight=4.0,
                              tier=0)
        economy = TenantClass("economy", slo_multiplier=2.0, weight=1.0,
                              tier=1)
        trace = generate_tenant_traffic(
            [(premium, 0.25), (economy, 0.75)],
            pattern="bursty", n_requests=240, rate_rps=60000.0, seed=42,
            resolution=(64, 64), slo_s=0.001)
        observer = Observer(tracer=Tracer(), metrics=MetricsRegistry())
        report = simulate_service(
            trace,
            ServeCluster(3, policy="pipeline-affinity"),
            cache=TraceCache(capacity=64,
                             compile_fn=lambda key: stub_program(key[1])),
            batcher=PipelineBatcher(max_batch=4),
            admission=make_admission_policy("weighted"),
            compile_workers=2,
            preempt=True,
            observer=observer,
        )
        return report, observer, chrome_trace(observer.tracer,
                                              metrics=observer.metrics)

    def test_exported_trace_is_schema_valid(self, traced_run):
        _report, _observer, obj = traced_run
        assert validate_chrome_trace(obj) > 0

    def test_batch_spans_land_on_per_chip_tracks(self, traced_run):
        _report, _observer, obj = traced_run
        chips = {e["tid"] for e in obj["traceEvents"]
                 if e["ph"] == "X" and e["pid"] == TRACK_PIDS["chip"]
                 and e["name"].startswith("batch ")}
        assert chips == {0, 1, 2}

    def test_compile_spans_land_on_worker_tracks(self, traced_run):
        _report, _observer, obj = traced_run
        workers = [e for e in obj["traceEvents"]
                   if e["ph"] == "X" and e["pid"] == TRACK_PIDS["worker"]]
        assert workers
        assert all(e["name"].startswith("compile ") for e in workers)

    def test_preemptions_are_marked(self, traced_run):
        report, _observer, obj = traced_run
        assert report.n_preemption_events > 0
        marks = [e for e in obj["traceEvents"]
                 if e["ph"] == "i" and e["name"] == "preempt"]
        assert len(marks) == report.n_preemption_events

    def test_metrics_agree_with_the_report(self, traced_run):
        report, observer, _obj = traced_run
        flat = observer.metrics.flatten()
        assert flat["engine.responses"] == len(report.responses)
        assert flat["engine.preemptions"] == report.n_preemption_events
        assert flat["admission.weighted.shed"] == report.n_shed
