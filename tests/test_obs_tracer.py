"""Ring-buffer tracer: bounded memory, deterministic sampling."""

import pytest

from repro.errors import ConfigError
from repro.obs import TraceEvent, Tracer


class TestRingBuffer:
    def test_drop_oldest_under_pressure(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.instant(i * 0.1, f"e{i}", "test", ("fleet", 0))
        events = tracer.events()
        assert [e.name for e in events] == ["e6", "e7", "e8", "e9"]
        assert tracer.recorded == 10
        assert tracer.dropped == 6

    def test_tail_returns_newest(self):
        tracer = Tracer(capacity=16)
        for i in range(8):
            tracer.instant(i * 0.1, f"e{i}", "test", ("fleet", 0))
        assert [e.name for e in tracer.tail(3)] == ["e5", "e6", "e7"]
        assert len(tracer.tail(100)) == 8

    def test_clear_drops_events_but_keeps_lifetime_counters(self):
        tracer = Tracer(capacity=4)
        for i in range(6):
            tracer.instant(float(i), "e", "test", ("fleet", 0))
        tracer.clear()
        assert tracer.events() == []
        assert tracer.recorded == 6 and tracer.dropped == 2

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            Tracer(capacity=0)


class TestEvents:
    def test_span_and_instant_shapes(self):
        tracer = Tracer()
        tracer.span(1.0, 1.5, "work", "batch", ("chip", 2), {"size": 3})
        tracer.instant(2.0, "poke", "fleet", ("fleet", 0))
        span, instant = tracer.events()
        assert isinstance(span, TraceEvent)
        assert span.is_span and span.dur_s == pytest.approx(0.5)
        assert span.track == ("chip", 2) and span.args == {"size": 3}
        assert not instant.is_span and instant.dur_s is None

    def test_span_clamps_negative_duration(self):
        tracer = Tracer()
        tracer.span(2.0, 1.0, "clock-skew", "test", ("chip", 0))
        assert tracer.events()[0].dur_s == 0.0

    def test_to_dict_accounting(self):
        tracer = Tracer(capacity=2, sample=0.5)
        for i in range(5):
            tracer.instant(float(i), "e", "test", ("fleet", 0))
        d = tracer.to_dict()
        assert d["capacity"] == 2 and d["sample"] == 0.5
        assert d["recorded"] == 5 and d["dropped"] == 3
        assert d["resident"] == 2


class TestSampling:
    def test_sampling_is_deterministic_across_instances(self):
        a, b = Tracer(sample=0.3), Tracer(sample=0.3)
        ids = range(5000)
        assert [a.wants(i) for i in ids] == [b.wants(i) for i in ids]

    def test_sample_rate_roughly_honored(self):
        tracer = Tracer(sample=0.3)
        hits = sum(tracer.wants(i) for i in range(20000))
        assert 0.25 < hits / 20000 < 0.35

    def test_full_sampling_keeps_everything(self):
        tracer = Tracer(sample=1.0)
        assert all(tracer.wants(i) for i in range(1000))

    def test_sample_rate_validated(self):
        with pytest.raises(ConfigError):
            Tracer(sample=0.0)
        with pytest.raises(ConfigError):
            Tracer(sample=1.5)
