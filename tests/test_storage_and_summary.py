"""Tests for full-scale storage estimates and result summaries."""

import pytest

from repro.analysis import table1_overview, uni_result
from repro.compile.profiles import storage_estimate_bytes
from repro.errors import CompileError


class TestStorageEstimates:
    def test_all_pipelines_estimable(self):
        for pipeline in ("mesh", "mlp", "lowrank", "hashgrid", "gaussian"):
            for kind in ("synthetic", "unbounded"):
                assert storage_estimate_bytes(pipeline, kind) > 0

    def test_unknown_pipeline(self):
        with pytest.raises(CompileError):
            storage_estimate_bytes("voxels", "synthetic")

    def test_mlp_is_most_storage_efficient(self):
        """Table I: the MLP (NeRF) representation has 'very high'
        storage efficiency — the smallest of the five."""
        sizes = {
            p: storage_estimate_bytes(p, "unbounded")
            for p in ("mesh", "mlp", "lowrank", "hashgrid", "gaussian")
        }
        assert sizes["mlp"] == min(sizes.values())

    def test_gaussian_heaviest_volume_representation(self):
        """Explicit point clouds cost more than the factorized grids."""
        gaussian = storage_estimate_bytes("gaussian", "unbounded")
        assert gaussian > storage_estimate_bytes("lowrank", "unbounded")
        assert gaussian > storage_estimate_bytes("hashgrid", "unbounded")

    def test_within_table1_bounds(self):
        """Ours stay within ~25% of the cited per-scene bounds."""
        bounds_mb = {"mesh": 700, "mlp": 40, "lowrank": 160,
                     "hashgrid": 110, "gaussian": 600}
        for pipeline, bound in bounds_mb.items():
            ours = storage_estimate_bytes(pipeline, "unbounded") / 1e6
            assert ours <= bound * 1.25, (pipeline, ours)

    def test_unbounded_heavier_than_synthetic(self):
        for pipeline in ("mesh", "lowrank", "hashgrid", "gaussian"):
            assert storage_estimate_bytes(pipeline, "unbounded") > (
                storage_estimate_bytes(pipeline, "synthetic")
            )

    def test_table1_includes_storage(self):
        result = table1_overview(scenes=("room",))
        for row in result["data"].values():
            assert row["storage_mb"] > 0
        assert "storage (ours)" in result["text"]


class TestResultSummaries:
    def test_summary_mentions_key_facts(self):
        result = uni_result("room", "hashgrid")
        summary = result.summary()
        assert "hashgrid" in summary
        assert "FPS" in summary
        assert "%" in summary

    def test_timeline_one_bar_per_phase(self):
        result = uni_result("room", "gaussian")
        timeline = result.timeline(width=40)
        lines = timeline.splitlines()
        assert len(lines) == len(result.schedule.phases)
        assert all("#" in line for line in lines)
        assert any("[memory]" in line or "[compute]" in line for line in lines)
