"""Shape reproduction tests: who wins, by roughly what factor, where the
crossovers fall — the headline claims of every table and figure.

Tolerances are generous (typically +/-35% on ratios) because our
substrate is a calibrated model, not the authors' testbed; the *shape*
is what must hold (DESIGN.md section 6).
"""

import pytest

from repro.analysis import (
    figure15_breakdowns,
    figure16_speedup_energy,
    figure17_hybrid,
    table4_realtime,
    table5_scaling,
    uni_result,
)
from repro.analysis.tables import PAPER_TABLE_IV, PAPER_TABLE_V

#: Reduced scene sets keep the test suite fast; the benchmarks run the
#: full seven/eight-scene versions.
UNBOUNDED_SUBSET = ("room", "garden")
SYNTHETIC_SUBSET = ("lego", "chair")
INDOOR_SUBSET = ("room", "kitchen")


@pytest.fixture(scope="module")
def fig16():
    return figure16_speedup_energy(scenes=UNBOUNDED_SUBSET)


class TestTableIV:
    """Real-time rendering across all five pipelines (NeRF-Synthetic)."""

    @pytest.fixture(scope="class")
    def table4(self):
        return table4_realtime(scenes=SYNTHETIC_SUBSET)

    @pytest.mark.parametrize("pipeline", list(PAPER_TABLE_IV))
    def test_fps_within_tolerance(self, table4, pipeline):
        ours = table4["data"][pipeline]["fps"]
        paper = PAPER_TABLE_IV[pipeline]
        assert paper * 0.6 <= ours <= paper * 1.6, (pipeline, ours)

    def test_all_pipelines_real_time(self, table4):
        for pipeline in PAPER_TABLE_IV:
            assert table4["data"][pipeline]["real_time"], pipeline

    def test_pixel_reuse_exceeds_200fps(self, table4):
        assert table4["data"]["mlp_pixel_reuse"]["fps"] > 150.0

    def test_pipeline_speed_ordering(self, table4):
        """hash > mesh > lowrank > gaussian > mlp, as in Table IV."""
        fps = {p: table4["data"][p]["fps"] for p in PAPER_TABLE_IV}
        assert fps["hashgrid"] > fps["mesh"] > fps["lowrank"]
        assert fps["lowrank"] > fps["gaussian"] > fps["mlp"]


class TestTableV:
    def test_scaling_matrix_shape(self):
        matrix = table5_scaling()["data"]
        for key, paper_value in PAPER_TABLE_V.items():
            assert matrix[key] == pytest.approx(paper_value, rel=0.15), key

    def test_pe_scaling_saturates_without_sram(self):
        matrix = table5_scaling()["data"]
        assert matrix[(4, 1)] < 1.3     # paper: 1.1x
        assert matrix[(4, 4)] > 3.4     # paper: 4x


class TestFig15:
    def test_breakdowns(self):
        fig = figure15_breakdowns()
        assert fig["area"].total == pytest.approx(14.96, rel=0.01)
        assert fig["power"].chip_total == pytest.approx(5.78, rel=0.03)
        for key, want in fig["paper"]["area"].items():
            assert fig["area"].breakdown()[key] == pytest.approx(want, abs=0.02)
        for key, want in fig["paper"]["power"].items():
            assert fig["power"].fractions()[key] == pytest.approx(want, abs=0.03)


class TestFig16Speedups:
    def test_mesh_crossover_commercial_devices_win(self, fig16):
        """The paper's one negative result: mesh-optimized devices beat
        Uni-Render on the mesh pipeline (0.7x-0.9x)."""
        assert fig16["speedup"]["8Gen2"]["mesh"] < 1.0
        assert fig16["speedup"]["8Gen2"]["mesh"] == pytest.approx(0.7, rel=0.35)
        assert fig16["speedup"]["Orin NX"]["mesh"] == pytest.approx(0.9, rel=0.35)

    def test_max_speedup_about_119(self, fig16):
        values = [v for row in fig16["speedup"].values() for v in row.values() if v]
        assert max(values) == pytest.approx(119.0, rel=0.35)

    def test_commercial_range(self, fig16):
        for device in ("Orin NX", "Xavier NX", "8Gen2", "AMD 780M"):
            for pipeline, value in fig16["speedup"][device].items():
                assert 0.7 * 0.65 <= value <= 119 * 1.35, (device, pipeline)

    def test_energy_efficiency_range(self, fig16):
        values = [
            v
            for dev in ("Orin NX", "Xavier NX", "8Gen2", "AMD 780M")
            for v in fig16["energy"][dev].values()
        ]
        assert min(values) == pytest.approx(1.5, rel=0.4)
        assert max(values) == pytest.approx(354.0, rel=0.4)

    def test_dedicated_accelerator_anchors(self, fig16):
        assert fig16["speedup"]["RT-NeRF"]["lowrank"] == pytest.approx(3.0, rel=0.35)
        assert fig16["energy"]["RT-NeRF"]["lowrank"] == pytest.approx(6.0, rel=0.35)
        assert fig16["speedup"]["Instant-3D"]["hashgrid"] == pytest.approx(6.0, rel=0.35)
        assert fig16["energy"]["Instant-3D"]["hashgrid"] == pytest.approx(2.2, rel=0.35)

    def test_metavrain_wins_on_its_pipeline(self, fig16):
        """Uni-Render reaches only ~10% of MetaVRain's FPS and ~2% of its
        energy efficiency (Sec. VII-B)."""
        assert fig16["speedup"]["MetaVRain"]["mlp"] == pytest.approx(0.10, rel=0.35)
        assert fig16["energy"]["MetaVRain"]["mlp"] == pytest.approx(0.02, rel=0.5)

    def test_unsupported_pipelines_marked(self, fig16):
        assert fig16["speedup"]["Instant-3D"]["mesh"] is None
        assert fig16["speedup"]["MetaVRain"]["gaussian"] is None
        n_missing = sum(
            1 for row in fig16["speedup"].values() for v in row.values() if v is None
        )
        assert n_missing == 12  # 3 dedicated accelerators x 4 pipelines

    def test_uni_render_beats_every_device_somewhere(self, fig16):
        """Reconfigurability pays: for every commercial device there is a
        pipeline with a large win."""
        for device in ("Orin NX", "Xavier NX", "8Gen2", "AMD 780M"):
            assert max(v for v in fig16["speedup"][device].values() if v) > 10


class TestFig17Hybrid:
    @pytest.fixture(scope="class")
    def fig17(self):
        return figure17_hybrid(scenes=INDOOR_SUBSET)

    def test_speedup_window(self, fig17):
        values = [v for row in fig17["data"].values() for v in row.values()]
        assert min(values) >= 2.0 * 0.8
        assert max(values) <= 3.7 * 1.2

    def test_most_competitive_baselines(self, fig17):
        """Xavier NX and Orin NX are the closest baselines (2.0-2.6x)."""
        for device in ("Orin NX", "Xavier NX"):
            for value in fig17["data"][device].values():
                assert 2.0 * 0.8 <= value <= 2.6 * 1.25, device

    def test_consistent_across_scenes(self, fig17):
        """Speedups vary little from scene to scene (paper's point 2)."""
        for row in fig17["data"].values():
            values = list(row.values())
            assert max(values) / min(values) < 1.5


class TestRealTimeClaims:
    def test_uni_render_real_time_on_unbounded_volume_pipelines(self):
        """The abstract's >30 FPS claim, checked where the paper implies
        it on Unbounded-360 (lowrank/hash/gaussian)."""
        for pipeline in ("lowrank", "hashgrid", "gaussian"):
            assert uni_result("room", pipeline).fps > 25.0, pipeline

    def test_power_stays_edge_class(self):
        """Per-pipeline chip power stays around the 5 W edge budget."""
        for pipeline in ("mesh", "mlp", "lowrank", "hashgrid", "gaussian"):
            result = uni_result("room", pipeline)
            assert result.power_w < 5.78 * 1.25, pipeline
