"""Metrics registry: counters, gauges, and the P² quantile estimator.

The P² tests are the documented accuracy contract: on >= 2000 samples
the streaming estimate must land within 5% of the sample's interdecile
range of ``numpy.percentile``'s exact answer, across the distribution
shapes the serve stack actually produces (uniform queue delays,
lognormal latency tails, bursty bimodal mixtures).
"""

import math

import numpy as np
import pytest

from repro.errors import ConfigError, ObsError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, P2Quantile


class TestInstruments:
    def test_counter(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge(self):
        g = Gauge("g")
        g.set(3.5)
        g.set(-1.0)
        assert g.value == -1.0

    def test_histogram_snapshot_fields(self):
        h = Histogram("lat")
        for x in (1.0, 2.0, 3.0, 4.0):
            h.observe(x)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(10.0)
        assert snap["mean"] == pytest.approx(2.5)
        assert snap["min"] == 1.0 and snap["max"] == 4.0
        assert set(snap) >= {"p50", "p95", "p99"}

    def test_empty_histogram_snapshot_is_zeros(self):
        snap = Histogram("lat").snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0 and snap["mean"] == 0.0

    def test_untracked_quantile_raises(self):
        h = Histogram("lat", quantiles=(0.5,))
        h.observe(1.0)
        with pytest.raises(ObsError):
            h.quantile(0.99)


class TestP2Quantile:
    def test_validates_q(self):
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigError):
                P2Quantile(bad)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_exact_below_six_samples(self):
        est = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            est.add(x)
        assert est.value() == pytest.approx(3.0)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    @pytest.mark.parametrize("dist", ["uniform", "lognormal", "normal",
                                      "bimodal"])
    def test_tracks_numpy_percentile_within_bound(self, q, dist):
        # The documented contract: at n >= 2000, within 5% of the
        # sample's interdecile range of the exact answer (10% out at
        # the p99 tail, where the markers sit in the sparsest data).
        # crc32, not hash(): hash() is salted per process and would
        # make the sample draw non-deterministic.
        import zlib

        rng = np.random.default_rng(zlib.crc32(f"{dist}-{q}".encode()))
        n = 5000
        if dist == "uniform":
            xs = rng.uniform(0.0, 100.0, n)
        elif dist == "lognormal":
            xs = rng.lognormal(mean=0.0, sigma=1.0, size=n)
        elif dist == "normal":
            xs = rng.normal(50.0, 10.0, n)
        else:  # bursty mixture: fast hits + slow compile-storm tail
            xs = np.where(rng.random(n) < 0.8,
                          rng.normal(5.0, 1.0, n),
                          rng.normal(50.0, 5.0, n))
        est = P2Quantile(q)
        for x in xs:
            est.add(float(x))
        exact = float(np.percentile(xs, q * 100))
        interdecile = float(np.percentile(xs, 90) - np.percentile(xs, 10))
        bound = (0.10 if q >= 0.99 else 0.05) * interdecile
        assert abs(est.value() - exact) <= bound, (
            f"P2 {dist} q={q}: est {est.value():.4f} vs exact {exact:.4f} "
            f"(bound {bound:.4f})"
        )

    def test_streaming_matches_itself_regardless_of_chunking(self):
        # Determinism: the estimator is a pure function of the sample
        # sequence — feeding the same stream twice gives the same state.
        rng = np.random.default_rng(7)
        xs = [float(x) for x in rng.exponential(2.0, 3000)]
        a, b = P2Quantile(0.95), P2Quantile(0.95)
        for x in xs:
            a.add(x)
        for x in xs:
            b.add(x)
        assert a.value() == b.value()


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ConfigError):
            reg.gauge("a")

    def test_flatten_is_name_sorted_with_histogram_fields(self):
        reg = MetricsRegistry()
        reg.counter("z.count").inc(2)
        reg.gauge("a.gauge").set(1.5)
        reg.histogram("m.lat").observe(10.0)
        flat = reg.flatten()
        # Metric order is name-sorted; each histogram expands in place.
        roots = []
        for key in flat:
            root = key.rsplit(".", 1)[0] if key.startswith("m.lat") else key
            if not roots or roots[-1] != root:
                roots.append(root)
        assert roots == ["a.gauge", "m.lat", "z.count"]
        assert flat["z.count"] == 2 and flat["a.gauge"] == 1.5
        assert flat["m.lat.count"] == 1
        assert flat["m.lat.p50"] == pytest.approx(10.0)

    def test_snapshot_appends_stamped_timeline_rows(self):
        reg = MetricsRegistry()
        c = reg.counter("events")
        c.inc()
        reg.snapshot(0.5)
        c.inc(2)
        reg.snapshot(1.0)
        assert [row["t_s"] for row in reg.timeline] == [0.5, 1.0]
        assert [row["events"] for row in reg.timeline] == [1, 3]

    def test_snapshot_determinism(self):
        # Two registries fed the identical event sequence produce
        # byte-identical timelines.
        import json

        def feed(reg):
            lat = reg.histogram("lat")
            n = reg.counter("n")
            for i in range(500):
                lat.observe((i * 37 % 101) / 7.0)
                n.inc()
                if i % 100 == 0:
                    reg.snapshot(i / 1000.0)
            return reg

        a, b = feed(MetricsRegistry()), feed(MetricsRegistry())
        assert (json.dumps(a.timeline, sort_keys=True)
                == json.dumps(b.timeline, sort_keys=True))
        assert a.flatten() == b.flatten()
