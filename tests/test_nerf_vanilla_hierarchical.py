"""Tests for vanilla NeRF and hierarchical (importance) sampling."""

import numpy as np
import pytest

from repro.errors import ConfigError, SceneError
from repro.renderers.nerf import (
    NerfRenderer,
    build_vanilla_nerf,
    importance_sample,
)


@pytest.fixture(scope="module")
def vanilla_model(lego_field):
    return build_vanilla_nerf(
        lego_field, hidden=24, depth=2, train_steps=150, samples_per_ray=48
    )


class TestVanillaNeRF:
    def test_query_interface(self, vanilla_model, rng):
        pts = rng.uniform(-1, 1, (32, 3))
        dirs = np.tile([0, 0, 1.0], (32, 1))
        sigma, rgb = vanilla_model.query(pts, dirs)
        assert np.all(sigma >= 0)
        assert np.all((rgb >= 0) & (rgb <= 1))

    def test_no_occupancy_grid(self, vanilla_model):
        """Vanilla NeRF shades everything — the Fig. 7 slowness."""
        assert vanilla_model.occupancy is None

    def test_renders_through_nerf_renderer(self, vanilla_model, lego_field, lego_camera):
        image, stats = NerfRenderer(vanilla_model, lego_field).render(lego_camera)
        assert image.shape == (32, 32, 3)
        # Without skipping, every sample is shaded.
        assert stats.get("samples_shaded") == stats.get("samples_total")

    def test_storage_is_weights_only(self, vanilla_model):
        assert vanilla_model.storage_bytes() == vanilla_model.num_params * 2

    def test_smaller_storage_than_grids(self, vanilla_model, hashgrid_model):
        """Table I: the MLP representation is the most storage-efficient."""
        assert vanilla_model.storage_bytes() < hashgrid_model.storage_bytes()

    def test_build_validation(self, lego_field):
        with pytest.raises(ConfigError):
            build_vanilla_nerf(lego_field, depth=0, train_steps=1)


class TestImportanceSampling:
    def test_concentrates_where_weights_are(self):
        edges = np.linspace(0.0, 1.0, 9)  # 8 bins
        weights = np.zeros((1, 8))
        weights[0, 3] = 1.0  # all mass in bin [0.375, 0.5)
        depths = importance_sample(edges, weights, 64)
        assert depths.shape == (1, 64)
        inside = (depths >= 0.374) & (depths <= 0.501)
        assert inside.mean() > 0.95

    def test_sorted_output(self):
        rng = np.random.default_rng(0)
        edges = np.linspace(0.0, 2.0, 17)
        weights = rng.uniform(0, 1, (4, 16))
        depths = importance_sample(edges, weights, 32, rng=rng)
        assert np.all(np.diff(depths, axis=1) >= 0)

    def test_uniform_weights_spread_samples(self):
        edges = np.linspace(0.0, 1.0, 5)
        weights = np.ones((1, 4))
        depths = importance_sample(edges, weights, 400)
        hist, _ = np.histogram(depths[0], bins=4, range=(0, 1))
        assert hist.min() > 50  # roughly uniform

    def test_range_stays_in_edges(self):
        rng = np.random.default_rng(1)
        edges = np.linspace(2.0, 5.0, 11)
        weights = rng.uniform(0, 1, (3, 10))
        depths = importance_sample(edges, weights, 16, rng=rng)
        assert depths.min() >= 2.0 and depths.max() <= 5.0

    def test_zero_samples_rejected(self):
        with pytest.raises(SceneError):
            importance_sample(np.linspace(0, 1, 3), np.ones((1, 2)), 0)

    def test_degenerate_weights_handled(self):
        """All-zero weights fall back to (near) uniform via the epsilon."""
        edges = np.linspace(0.0, 1.0, 5)
        depths = importance_sample(edges, np.zeros((1, 4)), 64)
        assert np.isfinite(depths).all()
