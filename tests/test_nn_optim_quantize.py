"""Unit tests for optimizers and the BF16/INT16 quantization helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.nn import (
    Adam,
    MLP,
    bf16_round,
    int16_dequantize,
    int16_quantize,
    quantization_mse,
    sgd_step,
)


class TestSGD:
    def test_moves_against_gradient(self):
        p = np.array([1.0, -1.0])
        sgd_step([p], [np.array([0.5, -0.5])], lr=0.1)
        assert np.allclose(p, [0.95, -0.95])

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigError):
            sgd_step([np.zeros(2)], [], lr=0.1)


class TestAdam:
    def test_minimizes_quadratic(self):
        p = np.array([5.0])
        opt = Adam([p], lr=0.5)
        for _ in range(200):
            opt.step([2.0 * p])
        assert abs(p[0]) < 1e-2

    def test_rejects_bad_lr(self):
        with pytest.raises(ConfigError):
            Adam([np.zeros(1)], lr=0.0)

    def test_rejects_bad_betas(self):
        with pytest.raises(ConfigError):
            Adam([np.zeros(1)], beta1=1.0)

    def test_gradient_list_must_match(self):
        opt = Adam([np.zeros(2)])
        with pytest.raises(ConfigError):
            opt.step([])

    def test_trains_mlp_on_regression(self):
        rng = np.random.default_rng(0)
        mlp = MLP([2, 16, 1], output_activation="linear", rng=rng)
        x = rng.uniform(-1, 1, size=(256, 2))
        y = (x[:, :1] * x[:, 1:2])  # multiplicative target
        opt = Adam(mlp.parameters(), lr=1e-2)
        first = None
        for step in range(300):
            pred = mlp(x)
            err = pred - y
            loss = float(np.mean(err**2))
            if first is None:
                first = loss
            mlp.backward(2.0 * err / len(x))
            opt.step(mlp.gradients())
        assert loss < first * 0.2


class TestBF16:
    def test_idempotent(self):
        x = np.random.default_rng(0).normal(size=100)
        once = bf16_round(x)
        assert np.array_equal(bf16_round(once), once)

    def test_exact_for_small_integers(self):
        x = np.arange(-128, 128, dtype=np.float64)
        assert np.array_equal(bf16_round(x), x)

    @given(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False).filter(
            lambda v: v == 0.0 or abs(v) > 1e-30  # skip float32 subnormals
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_relative_error_bounded(self, value):
        rounded = float(bf16_round(np.array([value]))[0])
        if value != 0:
            # BF16 has an 8-bit mantissa: relative error < 2^-8.
            assert abs(rounded - value) <= abs(value) * 2.0**-8


class TestINT16:
    def test_roundtrip_error_bounded_by_scale(self):
        x = np.linspace(-1, 1, 1001)
        back = int16_dequantize(int16_quantize(x, 0.01), 0.01)
        assert np.max(np.abs(back - x)) <= 0.005 + 1e-12

    def test_saturation(self):
        q = int16_quantize(np.array([1e9, -1e9]), 1.0)
        assert q[0] == 32767 and q[1] == -32768

    def test_bad_scale_rejected(self):
        with pytest.raises(ConfigError):
            int16_quantize(np.zeros(1), 0.0)
        with pytest.raises(ConfigError):
            int16_dequantize(np.zeros(1, dtype=np.int16), -1.0)

    @given(st.floats(min_value=4e-4, max_value=10.0))
    @settings(max_examples=50, deadline=None)
    def test_quantization_mse_bounded(self, scale):
        # Scale chosen so +/-10 stays inside the INT16 range (no
        # saturation): the uniform-quantization MSE bound then applies.
        x = np.random.default_rng(0).uniform(-10, 10, 256)
        assert quantization_mse(x, scale) <= scale**2 / 4 + 1e-9
