"""Tests for the pipeline -> micro-op compilers (Sec. IV executable)."""

import pytest

from repro.compile import compile_program, measure_coeffs, profile_for
from repro.core import MicroOp
from repro.errors import CompileError


class TestProfiles:
    def test_all_pipeline_kind_combinations_exist(self):
        for pipeline in ("mesh", "mlp", "lowrank", "hashgrid", "gaussian"):
            for kind in ("synthetic", "unbounded"):
                assert profile_for(pipeline, kind) is not None

    def test_unknown_profile(self):
        with pytest.raises(CompileError):
            profile_for("raytracing", "synthetic")

    def test_unbounded_heavier_than_synthetic(self):
        mesh_s = profile_for("mesh", "synthetic")
        mesh_u = profile_for("mesh", "unbounded")
        assert mesh_u.n_triangles > mesh_s.n_triangles
        hash_s = profile_for("hashgrid", "synthetic")
        hash_u = profile_for("hashgrid", "unbounded")
        assert hash_u.table_bytes > hash_s.table_bytes
        assert hash_u.samples_per_ray > hash_s.samples_per_ray


class TestMeasure:
    def test_volume_coeffs_field_based(self):
        coeffs = measure_coeffs("lego", "hashgrid")
        assert 0.0 < coeffs["live_fraction"] < 0.5

    def test_live_fraction_shared_across_volume_pipelines(self):
        a = measure_coeffs("lego", "hashgrid")["live_fraction"]
        b = measure_coeffs("lego", "lowrank")["live_fraction"]
        assert a == b  # same field-derived statistic

    def test_mixrt_live_fraction_halved(self):
        full = measure_coeffs("lego", "hashgrid")["live_fraction"]
        hybrid = measure_coeffs("lego", "mixrt")["live_fraction"]
        assert hybrid == pytest.approx(0.5 * full)

    def test_mesh_coeffs_have_coverage(self):
        coeffs = measure_coeffs("lego", "mesh")
        assert 0.0 < coeffs["coverage"] <= 1.0
        assert coeffs["overdraw"] > 0

    def test_gaussian_coeffs(self):
        coeffs = measure_coeffs("lego", "gaussian")
        assert 0.0 < coeffs["visible_fraction"] <= 1.0
        assert coeffs["splat_overlap"] > 0


class TestCompilers:
    """Programs must use exactly the micro-operators Table II assigns."""

    def test_mesh_program_ops(self):
        prog = compile_program("lego", "mesh", 100, 100)
        ops = set(prog.ops_used())
        assert ops == {MicroOp.GEMM, MicroOp.GEOMETRIC, MicroOp.COMBINED_GRID}
        names = [inv.name for inv in prog.invocations]
        assert "rasterization" in names and "texture_indexing" in names

    def test_mlp_program_is_gemm_only(self):
        prog = compile_program("lego", "mlp", 100, 100)
        assert set(prog.ops_used()) == {MicroOp.GEMM}

    def test_lowrank_uses_decomposed_grid(self):
        prog = compile_program("lego", "lowrank", 100, 100)
        assert MicroOp.DECOMPOSED_GRID in prog.ops_used()
        assert MicroOp.COMBINED_GRID not in prog.ops_used()

    def test_hashgrid_uses_combined_grid(self):
        prog = compile_program("lego", "hashgrid", 100, 100)
        assert MicroOp.COMBINED_GRID in prog.ops_used()
        assert MicroOp.DECOMPOSED_GRID not in prog.ops_used()

    def test_gaussian_uses_sorting(self):
        prog = compile_program("lego", "gaussian", 100, 100)
        ops = set(prog.ops_used())
        assert MicroOp.SORTING in ops
        assert MicroOp.GEOMETRIC in ops

    def test_mixrt_combines_both_halves(self):
        prog = compile_program("room", "mixrt", 100, 100)
        names = [inv.name for inv in prog.invocations]
        assert any(n.startswith("mesh:") for n in names)
        assert any(n.startswith("volume:") for n in names)
        assert MicroOp.COMBINED_GRID in prog.ops_used()
        assert MicroOp.GEOMETRIC in prog.ops_used()

    def test_unknown_pipeline(self):
        with pytest.raises(CompileError):
            compile_program("lego", "pathtracing", 10, 10)

    def test_bad_resolution(self):
        with pytest.raises(CompileError):
            compile_program("lego", "mesh", 0, 10)

    def test_volume_work_scales_with_pixels(self):
        small = compile_program("lego", "hashgrid", 100, 100)
        large = compile_program("lego", "hashgrid", 200, 200)
        assert large.total("bf16_ops") == pytest.approx(
            4 * small.total("bf16_ops"), rel=0.01
        )

    def test_mesh_geometry_term_resolution_independent(self):
        """Triangle-count-driven work must not scale with resolution."""
        small = compile_program("lego", "mesh", 100, 100)
        large = compile_program("lego", "mesh", 200, 200)

        def raster_prims(prog):
            for inv in prog.invocations:
                if inv.name == "rasterization":
                    return inv.workload.dram_unique_bytes
            raise AssertionError("no rasterization stage")

        assert raster_prims(small) == raster_prims(large)

    def test_pixel_reuse_reduces_work(self):
        full = compile_program("lego", "mlp", 200, 200)
        reused = compile_program("lego", "mlp", 200, 200, pixel_reuse=20)
        assert reused.total("bf16_ops") == pytest.approx(
            full.total("bf16_ops") / 20, rel=0.01
        )

    def test_programs_record_pixels(self):
        prog = compile_program("lego", "gaussian", 123, 45)
        assert prog.pixels == 123 * 45

    @pytest.mark.parametrize(
        "pipeline", ["mesh", "mlp", "lowrank", "hashgrid", "gaussian", "mixrt"]
    )
    def test_all_workloads_positive(self, pipeline):
        scene = "room" if pipeline == "mixrt" else "lego"
        prog = compile_program(scene, pipeline, 64, 64)
        assert prog.invocations
        for inv in prog.invocations:
            assert inv.workload.items >= 0
            assert inv.workload.bf16_ops + inv.workload.int_ops > 0
