"""Unit + property tests for primitives, fields, and compositing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SceneError
from repro.scenes import (
    Box,
    Camera,
    Cylinder,
    FloorPlane,
    SceneField,
    Sphere,
    Torus,
    contract_unbounded,
    orbit_poses,
)
from repro.scenes.fields import composite_along_rays

unit_vec = st.tuples(
    st.floats(-1, 1), st.floats(-1, 1), st.floats(-1, 1)
).filter(lambda v: 1e-3 < np.linalg.norm(v))


class TestPrimitives:
    def test_sphere_sdf_exact(self):
        s = Sphere(center=(1, 0, 0), radius=0.5)
        d = s.sdf(np.array([[1, 0, 0], [2, 0, 0], [1, 0.5, 0]]))
        assert np.allclose(d, [-0.5, 0.5, 0.0])

    @given(unit_vec, st.floats(0.1, 2.0))
    @settings(max_examples=50, deadline=None)
    def test_sphere_sdf_matches_norm(self, point, radius):
        s = Sphere(radius=radius)
        p = np.array([point])
        assert np.isclose(s.sdf(p)[0], np.linalg.norm(p) - radius, atol=1e-12)

    def test_box_inside_negative(self):
        b = Box(half_extents=(1, 1, 1))
        assert b.sdf(np.zeros((1, 3)))[0] < 0
        assert b.sdf(np.array([[2.0, 0, 0]]))[0] > 0

    def test_density_high_inside_low_outside(self):
        for prim in (Sphere(radius=0.5), Box(), Cylinder(), Torus()):
            inside = prim.density(prim.center[None] if not isinstance(prim, Torus)
                                  else np.array([[prim.major_radius, 0, 0]]))
            far = prim.density(np.array([[10.0, 10.0, 10.0]]))
            assert inside[0] > 0.9 * prim.density_scale
            assert far[0] < 1e-3

    def test_floor_plane_infinite_radius_and_checker(self):
        f = FloorPlane(center=(0, 0, 0))
        assert np.isinf(f.bounding_radius())
        c = f.color(np.array([[0.1, 0.1, -0.01], [0.6, 0.1, -0.01]]))
        assert not np.allclose(c[0], c[1])  # checker alternates

    def test_sheen_adds_view_dependence(self):
        s = Sphere(sheen=0.5, sheen_dir=(0, 0, 1))
        p = np.zeros((1, 3))
        aligned = s.color(p, np.array([[0, 0, 1.0]]))
        across = s.color(p, np.array([[1.0, 0, 0]]))
        assert aligned[0].sum() > across[0].sum()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SceneError):
            Sphere(density_scale=-1.0)
        with pytest.raises(SceneError):
            Box(half_extents=(0, 1, 1))


class TestSceneField:
    def test_needs_primitives(self):
        with pytest.raises(SceneError):
            SceneField([])

    def test_density_is_max_of_primitives(self):
        a = Sphere(center=(0, 0, 0), radius=0.5, density_scale=10.0)
        b = Sphere(center=(0, 0, 0), radius=0.5, density_scale=40.0)
        field = SceneField([a, b])
        d = field.density(np.zeros((1, 3)))
        assert np.isclose(d[0], b.density(np.zeros((1, 3)))[0])

    def test_color_blends_toward_denser_primitive(self):
        red = Sphere(center=(0, 0, 0), radius=0.5, albedo=(1, 0, 0), density_scale=100.0)
        blue = Sphere(center=(0.4, 0, 0), radius=0.5, albedo=(0, 0, 1), density_scale=1.0)
        field = SceneField([red, blue])
        c = field.color(np.zeros((1, 3)))
        assert c[0, 0] > 0.9

    def test_backgrounds(self):
        prim = [Sphere()]
        dirs = np.array([[0, 0, 1.0], [0, 0, -1.0]])
        white = SceneField(prim, background="white").background_color(dirs)
        assert np.allclose(white, 1.0)
        sky = SceneField(prim, background="sky").background_color(dirs)
        assert sky[0, 2] > sky[1, 2]  # bluer at zenith
        with pytest.raises(SceneError):
            SceneField(prim, background="plaid")

    def test_occupancy_fraction_bounds(self, lego_field, rng):
        occ = lego_field.occupancy_fraction(rng, n_probe=2048)
        assert 0.02 < occ < 0.9

    def test_render_reference_shape_and_range(self, lego_field):
        cam = Camera(16, 16, pose=orbit_poses(3.0, 4)[0])
        img = lego_field.render_reference(cam, n_samples=24)
        assert img.shape == (16, 16, 3)
        assert img.min() >= 0.0 and img.max() <= 1.0


class TestContraction:
    def test_identity_inside_unit_ball(self):
        p = np.array([[0.3, -0.2, 0.1]])
        assert np.allclose(contract_unbounded(p), p)

    def test_outside_maps_into_radius_two(self):
        p = np.array([[100.0, 0, 0], [0, 1e6, 0]])
        out = contract_unbounded(p)
        norms = np.linalg.norm(out, axis=1)
        assert np.all(norms < 2.0)
        assert norms[1] > norms[0]  # farther points land closer to the shell

    @given(unit_vec, st.floats(1.01, 1e5))
    @settings(max_examples=60, deadline=None)
    def test_contraction_preserves_direction(self, direction, scale):
        d = np.asarray(direction) / np.linalg.norm(direction)
        p = (d * scale)[None]
        out = contract_unbounded(p)[0]
        assert np.allclose(out / np.linalg.norm(out), d, atol=1e-9)


class TestCompositing:
    def test_empty_volume_returns_background(self):
        sigma = np.zeros((4, 8))
        rgb = np.zeros((4, 8, 3))
        bg = np.full((4, 3), 0.7)
        out = composite_along_rays(sigma, rgb, 0.1, bg)
        assert np.allclose(out, 0.7, atol=1e-6)

    def test_opaque_first_sample_dominates(self):
        sigma = np.zeros((1, 8))
        sigma[0, 0] = 1e6
        rgb = np.zeros((1, 8, 3))
        rgb[0, 0] = [0.2, 0.4, 0.6]
        out = composite_along_rays(sigma, rgb, 0.1, np.ones((1, 3)))
        assert np.allclose(out[0], [0.2, 0.4, 0.6], atol=1e-4)

    def test_weights_never_exceed_one(self):
        rng = np.random.default_rng(0)
        sigma = rng.uniform(0, 50, size=(16, 32))
        rgb = np.ones((16, 32, 3))
        out = composite_along_rays(sigma, rgb, 0.05, None)
        assert np.all(out <= 1.0 + 1e-9)

    @given(st.floats(0.0, 100.0), st.floats(0.01, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_single_sample_alpha_formula(self, sigma_val, dt):
        sigma = np.array([[sigma_val]])
        rgb = np.ones((1, 1, 3))
        out = composite_along_rays(sigma, rgb, dt, np.zeros((1, 3)))
        expected = 1.0 - np.exp(-sigma_val * dt)
        assert np.allclose(out[0], expected, atol=1e-9)

    def test_more_density_more_opacity(self):
        rgb = np.ones((1, 16, 3))
        lo = composite_along_rays(np.full((1, 16), 0.5), rgb, 0.1, np.zeros((1, 3)))
        hi = composite_along_rays(np.full((1, 16), 5.0), rgb, 0.1, np.zeros((1, 3)))
        assert hi[0, 0] > lo[0, 0]
