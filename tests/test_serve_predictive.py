"""Invariant suite of the predictive serving layer.

Randomized, seeded cases over the three predictive pieces:

* **Trace library** — an empty or absent library warm-starts to a
  byte-identical cold start; the JSON artifact round-trips
  (save -> load -> save) to the same bytes; malformed artifacts fail
  loudly; absorb records exactly what the cache held.
* **Markov prefetcher** — deterministic per seed; its per-state
  transition weights always equal the counts recomputed from the
  observed history; below the observation threshold it degrades to the
  recency predictor; resident keys never consume candidate slots
  (the warm-start accuracy-inflation fix).
* **Predictive autoscaler** — never violates its fleet bounds, never
  acts inside the cooldown, and is bit-deterministic: the same trace
  always produces the same fleet timeline and report.
"""

import json
import random
from collections import defaultdict

import pytest

from repro.compile.workloads import gemm_workload
from repro.core.microops import MicroOp, MicroOpProgram
from repro.errors import ConfigError
from repro.serve import (
    Autoscaler,
    PipelineBatcher,
    ServeCluster,
    TraceCache,
    TraceLibrary,
    TracePrefetcher,
    TraceRecord,
    generate_traffic,
    simulate_service,
)

_PIPELINE_MACS = {"hashgrid": 2e7, "gaussian": 1.6e8, "mesh": 4e7}


def stub_program(pipeline):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=_PIPELINE_MACS.get(pipeline, 5e7), rows=1e3,
                      in_width=32, out_width=4, weight_bytes=1e4),
    )
    return program


def stub_cache(capacity=64):
    return TraceCache(capacity=capacity,
                      compile_fn=lambda key: stub_program(key[1]))


# ----------------------------------------------------------------------
# Warm start neutrality: nothing in the library, nothing in the report.
# ----------------------------------------------------------------------
class TestWarmStartNeutrality:
    @pytest.mark.parametrize("pattern", ["steady", "bursty", "diurnal"])
    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_empty_library_is_byte_identical_to_cold_start(
            self, pattern, seed):
        trace = generate_traffic(pattern=pattern, n_requests=80,
                                 rate_rps=4000.0, seed=seed,
                                 resolution=(64, 64), slo_s=0.002)

        def run(**kwargs):
            return simulate_service(
                trace, ServeCluster(2), cache=stub_cache(),
                batcher=PipelineBatcher(), **kwargs).to_dict()

        plain = run()
        warmless = run(trace_library=TraceLibrary())
        assert warmless == plain

    def test_absent_library_file_is_byte_identical_to_cold_start(
            self, tmp_path):
        trace = generate_traffic(pattern="bursty", n_requests=60,
                                 rate_rps=4000.0, seed=3,
                                 resolution=(64, 64), slo_s=0.002)

        def run(**kwargs):
            return simulate_service(
                trace, ServeCluster(2), cache=stub_cache(),
                batcher=PipelineBatcher(), **kwargs).to_dict()

        plain = run()
        path = tmp_path / "missing" / "library.json"
        path.parent.mkdir()
        from_path = run(trace_library=str(path))
        assert from_path == plain
        # The shutdown flush created the artifact for the next run.
        assert path.exists()
        assert len(TraceLibrary.load(path)) > 0

    def test_cluster_spelling_matches_engine_spelling(self):
        trace = generate_traffic(pattern="steady", n_requests=60,
                                 rate_rps=4000.0, seed=5,
                                 resolution=(64, 64), slo_s=0.002)
        library = TraceLibrary()
        seeded = simulate_service(
            trace, ServeCluster(2), cache=stub_cache(),
            batcher=PipelineBatcher(), trace_library=library)
        via_engine = simulate_service(
            trace, ServeCluster(2), cache=stub_cache(),
            batcher=PipelineBatcher(), trace_library=library)
        via_cluster = simulate_service(
            trace, ServeCluster(2, trace_library=library),
            cache=stub_cache(), batcher=PipelineBatcher())
        assert via_cluster.to_dict() == via_engine.to_dict()
        assert seeded.cache_stats["warmed"] == 0
        assert via_cluster.cache_stats["warmed"] > 0


# ----------------------------------------------------------------------
# Library round trip and artifact hygiene.
# ----------------------------------------------------------------------
def random_library(rng):
    scenes = ["lego", "room", "ship", "chair"]
    pipelines = ["hashgrid", "gaussian", "mesh"]
    records = []
    seen = set()
    for _ in range(rng.randrange(1, 12)):
        key = (rng.choice(scenes), rng.choice(pipelines),
               rng.choice([64, 128]), rng.choice([64, 128]))
        if key in seen:
            continue
        seen.add(key)
        records.append(TraceRecord(
            scene=key[0], pipeline=key[1], width=key[2], height=key[3],
            invocations=rng.randrange(1, 40),
            pixels=rng.randrange(0, 1 << 20),
            compile_s=rng.random() * 0.01,
            hits=rng.randrange(0, 1000),
        ))
    return TraceLibrary(records)


class TestLibraryRoundTrip:
    @pytest.mark.parametrize("seed", range(8))
    def test_save_load_save_is_byte_stable(self, seed, tmp_path):
        library = random_library(random.Random(seed))
        path = tmp_path / "library.json"
        library.save(path)
        first = path.read_bytes()
        reloaded = TraceLibrary.load(path)
        reloaded.save(path)
        assert path.read_bytes() == first
        assert reloaded.keys == library.keys
        assert reloaded.total_hits == library.total_hits

    @pytest.mark.parametrize("seed", range(4))
    def test_dumps_round_trips_through_from_dict(self, seed):
        library = random_library(random.Random(100 + seed))
        text = library.dumps()
        again = TraceLibrary.from_dict(json.loads(text))
        assert again.dumps() == text

    def test_absorb_records_resident_traces_and_hits(self):
        cache = stub_cache()
        keys = [("lego", "hashgrid", 64, 64), ("room", "mesh", 64, 64)]
        for key in keys:
            cache.get(key)
        cache.get(keys[0])  # one demand hit
        library = TraceLibrary()
        library.absorb(cache)
        assert set(library.keys) == set(keys)
        assert library.get(keys[0]).hits == 1
        assert library.get(keys[1]).hits == 0
        # LRU order survives: keys[0] was touched last.
        assert library.keys[-1] == keys[0]
        record = library.get(keys[0])
        program = stub_program("hashgrid")
        assert record.invocations == len(program.invocations)
        assert record.pixels == program.pixels

    def test_shared_cache_absorb_counts_each_run_once(self):
        # hits_by_key is a lifetime counter; the engine must credit the
        # library with per-run deltas, or a cache shared across runs
        # (a supported warm-service pattern) compounds earlier runs'
        # hits into the artifact on every flush.
        trace = generate_traffic(pattern="steady", n_requests=60,
                                 rate_rps=4000.0, seed=8,
                                 resolution=(64, 64), slo_s=0.002)
        cache = stub_cache()
        library = TraceLibrary()
        for _ in range(2):
            simulate_service(trace, ServeCluster(2), cache=cache,
                             batcher=PipelineBatcher(),
                             trace_library=library)
        # Every demand hit landed on a key that is resident at the end,
        # so lifetime hits in the library == the cache's own lifetime
        # hit counter — each run's hits counted exactly once.
        assert library.total_hits == cache.stats.hits
        # And the second run's warm-start skipped the already-resident
        # traces: no redundant host compiles, no inflated counter.
        assert cache.stats.warmed == 0

    def test_warm_respects_cache_capacity(self):
        rng = random.Random(9)
        library = random_library(rng)
        cache = stub_cache(capacity=2)
        warmed = library.warm(cache)
        assert warmed == min(2, len(library))
        assert len(cache) <= 2
        # The *most recent* records were installed.
        assert set(cache.keys) == set(library.keys[-warmed:])

    def test_version_and_shape_are_enforced(self, tmp_path):
        with pytest.raises(ConfigError):
            TraceLibrary.from_dict({"version": 99, "entries": []})
        with pytest.raises(ConfigError):
            TraceLibrary.from_dict({"version": 1})
        with pytest.raises(ConfigError):
            TraceLibrary.from_dict({"version": 1, "entries": [{"scene": "x"}]})
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ConfigError):
            TraceLibrary.load(bad)
        record = TraceRecord("lego", "mesh", 64, 64, 1, 1024, 0.1)
        with pytest.raises(ConfigError):
            TraceLibrary([record, record])


# ----------------------------------------------------------------------
# Markov predictor: determinism and consistency with observed history.
# ----------------------------------------------------------------------
def random_stream(rng, length=60):
    """A synthetic multi-session stream with real pipeline structure:
    each scene sticks to a pipeline for a while, then transitions."""
    scenes = ["lego", "room", "ship"]
    pipelines = ["hashgrid", "gaussian", "mesh"]
    current = {scene: rng.choice(pipelines) for scene in scenes}
    stream = []
    for _ in range(length):
        scene = rng.choice(scenes)
        if rng.random() < 0.3:
            current[scene] = rng.choice(pipelines)
        stream.append((scene, current[scene], 64, 64))
    return stream


class TestMarkovPredictor:
    @pytest.mark.parametrize("seed", range(10))
    def test_deterministic_per_seed(self, seed):
        stream = random_stream(random.Random(seed))
        a = TracePrefetcher(seed=seed)
        b = TracePrefetcher(seed=seed)
        for key in stream:
            a.observe(key)
            b.observe(key)
            assert a.candidates() == b.candidates()
        assert a.to_dict() == b.to_dict()

    @pytest.mark.parametrize("seed", range(10))
    def test_transition_weights_match_observed_history(self, seed):
        stream = random_stream(random.Random(1000 + seed))
        prefetcher = TracePrefetcher()
        expected = defaultdict(lambda: defaultdict(int))
        last = {}
        for key in stream:
            prefetcher.observe(key)
            scene, pipeline, width, height = key
            session = (scene, width, height)
            previous = last.get(session)
            if previous is not None:
                expected[previous][pipeline] += 1
            last[session] = pipeline
        for pipeline in {"hashgrid", "gaussian", "mesh"}:
            assert prefetcher.transition_weights(pipeline) == dict(
                expected.get(pipeline, {}))

    def test_cold_model_falls_back_to_recency(self):
        markov = TracePrefetcher(min_observations=1000)
        recency_only = TracePrefetcher(min_observations=1000)
        stream = random_stream(random.Random(5), length=20)
        for key in stream:
            markov.observe(key)
            recency_only.observe(key)
        # Below the threshold both emit the recency cross-product.
        assert markov.candidates() == recency_only._recency_candidates()

    @pytest.mark.parametrize("seed", range(4))
    def test_markov_candidates_come_from_observed_transitions(self, seed):
        stream = random_stream(random.Random(33 + seed), length=80)
        prefetcher = TracePrefetcher(min_observations=8)
        for key in stream:
            prefetcher.observe(key)
        for scene, pipeline, width, height in prefetcher.candidates():
            # Every Markov prediction is an observed transition target
            # out of the session's current pipeline.
            session_pipeline = prefetcher._session_pipeline[
                (scene, width, height)]
            assert pipeline in prefetcher.transition_weights(session_pipeline)

    def test_predictor_accuracy_counts_scored_forecasts(self):
        prefetcher = TracePrefetcher(min_observations=2)
        keys = [("lego", "hashgrid", 64, 64), ("lego", "gaussian", 64, 64)]
        # Build a perfectly alternating session: h->g->h->g ...
        for _ in range(4):
            for key in keys:
                prefetcher.observe(key)
        assert prefetcher.predictions > 0
        # Alternation is fully learnable by a first-order model.
        assert prefetcher.correct == prefetcher.predictions
        assert prefetcher.predictor_accuracy == 1.0
        payload = prefetcher.to_dict()
        assert payload["predictions"] == prefetcher.predictions
        assert payload["predictor_accuracy"] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            TracePrefetcher(min_observations=0)


# ----------------------------------------------------------------------
# The warm-start accuracy-inflation fix: resident keys are skipped.
# ----------------------------------------------------------------------
class TestPrefetchSkipIfPresent:
    @pytest.mark.parametrize("min_observations", [1000, 4],
                             ids=["recency-fallback", "markov"])
    def test_resident_keys_never_consume_candidate_slots(
            self, min_observations):
        # A wide twin (no slot cap to speak of) exposes the full
        # prediction ordering the capped prefetcher draws from.
        capped = TracePrefetcher(max_candidates=4,
                                 min_observations=min_observations)
        wide = TracePrefetcher(max_candidates=100,
                               min_observations=min_observations)
        for key in random_stream(random.Random(2), length=30):
            capped.observe(key)
            wide.observe(key)
        full_order = wide.candidates()
        unfiltered = capped.candidates()
        assert unfiltered == full_order[:len(unfiltered)]
        # Mark every key the capped view would emit as resident: a
        # post-hoc filter would now return [] — the fix must instead
        # advance deeper predictions into the freed slots.
        resident = set(unfiltered)
        filtered = capped.candidates(resident=resident)
        assert not resident & set(filtered)
        expected = [key for key in full_order if key not in resident]
        assert filtered == expected[:len(filtered)]
        if expected:
            assert filtered, (
                "resident keys consumed every candidate slot — filtering "
                "must happen before the slot cap"
            )

    def test_in_flight_keys_are_filtered_like_resident_ones(self):
        # The engine passes cache ∪ in-flight as the skip set: a key
        # already compiling must not occupy a candidate slot either.
        from repro.serve.engine import _KeyUnion

        prefetcher = TracePrefetcher(max_candidates=2,
                                     min_observations=1000)
        for key in random_stream(random.Random(4), length=30):
            prefetcher.observe(key)
        unfiltered = prefetcher.candidates()
        assert len(unfiltered) == 2
        resident = {unfiltered[0]}
        in_flight = {unfiltered[1]}
        filtered = prefetcher.candidates(
            resident=_KeyUnion(resident, in_flight))
        assert len(filtered) == 2
        assert not (resident | in_flight) & set(filtered)

    def test_fully_warmed_cache_issues_no_prefetches(self):
        from repro.core.config import CompileLatencyModel

        trace = generate_traffic(pattern="bursty", n_requests=80,
                                 rate_rps=6000.0, seed=2,
                                 resolution=(64, 64), slo_s=0.01)
        library = TraceLibrary()
        simulate_service(
            trace, ServeCluster(2), cache=stub_cache(),
            batcher=PipelineBatcher(), compile_workers=2,
            compile_latency=CompileLatencyModel(), trace_library=library)
        # Restart warm with prefetch armed: every candidate is already
        # resident, so the prefetcher must stay silent — a prefetch
        # recorded here would later count warm hits as its own skill.
        warm = simulate_service(
            trace, ServeCluster(2), cache=stub_cache(),
            batcher=PipelineBatcher(), compile_workers=2,
            compile_latency=CompileLatencyModel(), trace_library=library,
            prefetch=True)
        assert warm.cache_stats["misses"] == 0
        assert warm.prefetch_stats["issued"] == 0
        assert warm.prefetch_stats["hits"] == 0
        assert warm.prefetch_stats["accuracy"] == 0.0


# ----------------------------------------------------------------------
# Predictive autoscaler: bounds, cooldown, determinism.
# ----------------------------------------------------------------------
def predictive_case(seed):
    rng = random.Random(seed)
    pattern = rng.choice(["diurnal", "bursty", "steady"])
    min_chips = rng.randrange(1, 3)
    max_chips = min_chips + rng.randrange(1, 5)
    cooldown = rng.choice([0.0, 0.01, 0.05, 0.15])
    trace = generate_traffic(
        pattern=pattern, n_requests=400,
        rate_rps=rng.choice([1000.0, 2000.0, 4000.0]), seed=seed,
        resolution=(64, 64), slo_s=rng.choice([0.002, 0.01]))
    scaler = Autoscaler(
        min_chips=min_chips, max_chips=max_chips,
        target_queue_per_chip=rng.choice([1.0, 4.0]),
        slo_target=0.95, window_s=0.25,
        warmup_s=rng.choice([0.0, 0.02, 0.15]),
        cooldown_s=cooldown, mode="predictive",
        target_utilization=rng.choice([0.75, 1.0]),
        lead_s=rng.choice([None, 0.0, 0.1]),
        shrink_margin=rng.choice([1.0, 1.1, 1.5]),
    )
    return trace, scaler, min_chips, max_chips, cooldown


class TestPredictiveAutoscalerInvariants:
    @pytest.mark.parametrize("seed", range(12))
    def test_bounds_and_cooldown_hold(self, seed):
        trace, scaler, min_chips, max_chips, cooldown = predictive_case(seed)
        report = simulate_service(
            trace, ServeCluster(min_chips), cache=stub_cache(),
            batcher=PipelineBatcher(), autoscaler=scaler)
        for _, n_active in report.fleet_size_timeline:
            assert min_chips <= n_active <= max_chips
        times = [event.t_s for event in report.fleet_events]
        for earlier, later in zip(times, times[1:]):
            assert later - earlier >= cooldown - 1e-12
        assert report.n_requests == len(trace)

    @pytest.mark.parametrize("seed", range(6))
    def test_bit_deterministic(self, seed):
        def run():
            trace, scaler, min_chips, _, _ = predictive_case(200 + seed)
            return simulate_service(
                trace, ServeCluster(min_chips), cache=stub_cache(),
                batcher=PipelineBatcher(), autoscaler=scaler).to_dict()

        assert run() == run()

    def test_reactive_mode_ignores_forecast_feeds(self):
        # record_arrival is a no-op on a reactive controller, so the
        # engine's forecast feeds cannot perturb the reactive goldens.
        scaler = Autoscaler(mode="reactive")
        scaler.record_arrival(1.0)
        assert len(scaler._arrivals) == 0
        assert scaler.desired_fleet() is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            Autoscaler(mode="prescient")
        with pytest.raises(ConfigError):
            Autoscaler(lead_s=-0.1)
        with pytest.raises(ConfigError):
            Autoscaler(target_utilization=0.0)
        with pytest.raises(ConfigError):
            Autoscaler(target_utilization=1.5)
        with pytest.raises(ConfigError):
            Autoscaler(trend_alpha=0.0)
        with pytest.raises(ConfigError):
            Autoscaler(min_forecast_samples=1)
        with pytest.raises(ConfigError):
            Autoscaler(shrink_margin=0.9)
