"""Tests for the extension studies and the consolidated report."""

import pytest

from repro.analysis import (
    ALL_EXPERIMENTS,
    run_all,
    scale_scene_workload,
    scene_scaling_study,
    trajectory_study,
)
from repro.compile import compile_program
from repro.core import UniRenderAccelerator
from repro.errors import ConfigError


class TestTrajectoryStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return trajectory_study(scene="room", pipeline="hashgrid", n_frames=5)

    def test_one_fps_per_frame(self, study):
        assert len(study["data"]["fps"]) == 5
        assert all(f > 0 for f in study["data"]["fps"])

    def test_statistics_consistent(self, study):
        data = study["data"]
        assert data["min"] <= data["mean"] <= data["max"]
        assert data["all_real_time"] == all(f > 30 for f in data["fps"])

    def test_views_vary_in_cost(self, study):
        """Different viewpoints see different ray occupancy, so frame
        cost varies along the orbit."""
        assert study["data"]["max"] > study["data"]["min"]


class TestSceneScaling:
    def test_workload_scaling_includes_working_set(self):
        program = compile_program("room", "hashgrid", 320, 180)
        scaled = scale_scene_workload(program, 4.0)
        assert scaled.total("bf16_ops") == pytest.approx(4 * program.total("bf16_ops"))
        ws = [inv.workload.working_set_bytes for inv in program.invocations]
        ws_scaled = [inv.workload.working_set_bytes for inv in scaled.invocations]
        assert all(b == pytest.approx(4 * a) for a, b in zip(ws, ws_scaled))

    def test_bad_factor(self):
        program = compile_program("room", "hashgrid", 320, 180)
        with pytest.raises(ConfigError):
            scale_scene_workload(program, 0.0)

    def test_bigger_scene_slower_at_fixed_design(self):
        program = compile_program("room", "hashgrid", 1280, 720)
        accel = UniRenderAccelerator()
        base = accel.simulate(program).fps
        big = accel.simulate(scale_scene_workload(program, 2.0)).fps
        assert big < base / 1.8  # at least ~linear slowdown

    def test_study_finds_escalating_requirements(self):
        study = scene_scaling_study(
            scene_factors=(1.0, 2.0), design_scales=(1, 2, 4)
        )
        data = study["data"]
        assert data[1.0]["required_scale"] == 1
        need2 = data[2.0]["required_scale"]
        assert need2 is None or need2 > 1

    def test_balanced_scaling_monotone(self):
        study = scene_scaling_study(scene_factors=(1.0,), design_scales=(1, 2, 4))
        fps = study["data"][1.0]["fps_at_scale"]
        assert fps[4] > fps[2] > fps[1]


class TestReport:
    def test_experiment_registry_complete(self):
        # Every paper artifact plus the two extensions.
        for key in ("table1", "table2", "table3", "table4", "table5", "table6",
                    "fig7", "fig15", "fig16", "fig17"):
            assert key in ALL_EXPERIMENTS

    def test_run_selected(self):
        results = run_all(("table2", "table3"))
        assert set(results) == {"table2", "table3"}
        assert "text" in results["table2"]
