"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_render_defaults(self):
        args = build_parser().parse_args(["render", "lego"])
        assert args.scene == "lego"
        assert args.pipeline == "hashgrid"
        assert args.size == 48

    def test_simulate_scaling_flags(self):
        args = build_parser().parse_args(
            ["simulate", "room", "hashgrid", "--pe-scale", "2", "--sram-scale", "2"]
        )
        assert args.pe_scale == 2 and args.sram_scale == 2


class TestCommands:
    def test_simulate_prints_summary(self, capsys):
        code = main(["simulate", "room", "hashgrid", "--timeline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FPS" in out
        assert "#" in out  # timeline bars

    def test_simulate_scaled_design(self, capsys):
        code = main(["simulate", "room", "hashgrid",
                     "--pe-scale", "2", "--sram-scale", "2"])
        assert code == 0
        assert "FPS" in capsys.readouterr().out

    def test_render_small_frame(self, capsys):
        code = main(["render", "lego", "--pipeline", "gaussian", "--size", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload counters" in out

    def test_report_selected(self, capsys):
        code = main(["report", "table3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "module status" in out.lower() or "Table III" in out

    def test_unknown_scene_is_clean_error(self, capsys):
        code = main(["simulate", "atlantis", "hashgrid"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_experiment_is_clean_error(self, capsys):
        code = main(["report", "table99"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err


class TestServeCommand:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.chips == 4
        assert args.requests == 200
        assert args.traffic == "mixed"
        assert args.policy == "pipeline-affinity"

    def test_serve_prints_service_metrics(self, capsys):
        code = main(["serve", "--chips", "2", "--requests", "20",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid,gaussian"])
        out = capsys.readouterr().out
        assert code == 0
        assert "throughput" in out
        assert "latency p99" in out
        assert "SLO attainment" in out
        assert "cache hit rate" in out

    def test_serve_compare_policies(self, capsys):
        code = main(["serve", "--chips", "2", "--requests", "12",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid",
                     "--compare-policies"])
        out = capsys.readouterr().out
        assert code == 0
        for policy in ("round-robin", "least-loaded", "pipeline-affinity"):
            assert f"policy={policy}" in out

    def test_serve_unknown_traffic_is_clean_error(self, capsys):
        code = main(["serve", "--traffic", "tsunami", "--requests", "5"])
        assert code == 2
        assert "unknown traffic pattern" in capsys.readouterr().err

    def test_serve_unknown_policy_is_clean_error(self, capsys):
        code = main(["serve", "--policy", "chaos", "--requests", "5",
                     "--width", "64", "--height", "64"])
        assert code == 2
        assert "unknown sharding policy" in capsys.readouterr().err


class TestElasticServeFlags:
    def test_elastic_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.autoscale is None
        assert args.min_chips == 2
        assert args.admission == "admit-all"
        assert args.fleet_spec is None
        assert args.trace_library is None

    def test_autoscale_flag_modes(self):
        # Bare --autoscale keeps the pre-predictive behaviour (reactive);
        # the optional value selects the forecast-led controller.
        assert build_parser().parse_args(
            ["serve", "--autoscale"]).autoscale == "reactive"
        assert build_parser().parse_args(
            ["serve", "--autoscale", "predictive"]).autoscale == "predictive"

    def test_serve_autoscale_compares_fleets(self, capsys):
        code = main(["serve", "--chips", "3", "--requests", "24",
                     "--traffic", "bursty", "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid,gaussian",
                     "--autoscale", "--min-chips", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "autoscaled vs static" in out
        assert "chip-seconds" in out
        assert "fleet size timeline" in out

    def test_serve_fleet_spec_builds_heterogeneous_fleet(self, capsys):
        code = main(["serve", "--requests", "12",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid",
                     "--fleet-spec", "1*1x1,1*2x2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "16x16pe" in out and "16x32pe" in out

    def test_serve_admission_policy_runs(self, capsys):
        code = main(["serve", "--chips", "2", "--requests", "20",
                     "--traffic", "bursty", "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid,gaussian",
                     "--admission", "slo-shed"])
        out = capsys.readouterr().out
        assert code == 0
        assert "admission=slo-shed" in out

    def test_serve_bad_fleet_spec_is_clean_error(self, capsys):
        code = main(["serve", "--fleet-spec", "2y2", "--requests", "5"])
        assert code == 2
        assert "fleet-spec" in capsys.readouterr().err

    def test_serve_unknown_admission_is_clean_error(self, capsys):
        code = main(["serve", "--admission", "bouncer", "--requests", "5",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid"])
        assert code == 2
        assert "unknown admission policy" in capsys.readouterr().err


class TestEngineServeFlags:
    def test_engine_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.compile_workers == 0
        assert args.prefetch is False

    def test_serve_compile_workers_reports_pool_and_prefetch(self, capsys):
        code = main(["serve", "--chips", "2", "--requests", "20",
                     "--traffic", "bursty", "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid,gaussian",
                     "--compile-workers", "2", "--prefetch"])
        out = capsys.readouterr().out
        assert code == 0
        assert "compile workers" in out
        assert "prefetch accuracy" in out

    def test_serve_prefetch_without_workers_is_clean_error(self, capsys):
        code = main(["serve", "--requests", "5", "--prefetch",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid"])
        assert code == 2
        assert "--compile-workers" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_obs_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.trace_out is None
        assert args.trace_sample == 1.0
        assert args.trace_capacity == 65536
        assert args.metrics_out is None
        assert args.flight_recorder is False

    def test_trace_out_writes_schema_valid_artifact(self, tmp_path, capsys):
        from repro.obs import load_chrome_trace, validate_chrome_trace

        out_path = tmp_path / "serve.trace.json"
        code = main(["serve", "--chips", "2", "--requests", "20",
                     "--traffic", "bursty", "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid,gaussian",
                     "--trace-out", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace" in out and str(out_path) in out
        assert validate_chrome_trace(load_chrome_trace(out_path)) > 0

    def test_trace_subcommand_summarizes_artifact(self, tmp_path, capsys):
        out_path = tmp_path / "serve.trace.json"
        assert main(["serve", "--chips", "2", "--requests", "12",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid",
                     "--trace-out", str(out_path)]) == 0
        capsys.readouterr()
        code = main(["trace", str(out_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "trace events" in out
        assert "recorder:" in out

    def test_trace_subcommand_missing_file_is_clean_error(self, capsys):
        code = main(["trace", "/nonexistent/trace.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_metrics_out_writes_csv_timeline(self, tmp_path, capsys):
        out_path = tmp_path / "metrics.csv"
        code = main(["serve", "--chips", "2", "--requests", "12",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid",
                     "--metrics-out", str(out_path)])
        assert code == 0
        assert "metrics" in capsys.readouterr().out
        header = out_path.read_text().splitlines()[0]
        assert header.startswith("t_s,")
        assert "engine.arrivals" in header

    def test_flight_recorder_reports_armed_state(self, capsys):
        # A gentle run: armed, but nothing should trigger.
        code = main(["serve", "--chips", "2", "--requests", "12",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid",
                     "--flight-recorder"])
        out = capsys.readouterr().out
        assert code == 0
        assert "flight recorder" in out

    def test_comparison_runs_stay_untraced(self, tmp_path, capsys):
        # --compare-policies: the artifact must describe exactly the
        # first (primary) policy's schedule, not an accumulation.
        from repro.obs import load_chrome_trace

        solo_path = tmp_path / "solo.json"
        assert main(["serve", "--chips", "2", "--requests", "12",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid",
                     "--policy", "cost-aware",
                     "--trace-out", str(solo_path)]) == 0
        compare_path = tmp_path / "compare.json"
        assert main(["serve", "--chips", "2", "--requests", "12",
                     "--width", "64", "--height", "64",
                     "--scenes", "lego", "--pipelines", "hashgrid",
                     "--compare-policies",
                     "--trace-out", str(compare_path)]) == 0
        capsys.readouterr()
        solo = load_chrome_trace(solo_path)["otherData"]["recorded"]
        compared = load_chrome_trace(compare_path)["otherData"]["recorded"]
        assert solo == compared
