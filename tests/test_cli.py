"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_render_defaults(self):
        args = build_parser().parse_args(["render", "lego"])
        assert args.scene == "lego"
        assert args.pipeline == "hashgrid"
        assert args.size == 48

    def test_simulate_scaling_flags(self):
        args = build_parser().parse_args(
            ["simulate", "room", "hashgrid", "--pe-scale", "2", "--sram-scale", "2"]
        )
        assert args.pe_scale == 2 and args.sram_scale == 2


class TestCommands:
    def test_simulate_prints_summary(self, capsys):
        code = main(["simulate", "room", "hashgrid", "--timeline"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FPS" in out
        assert "#" in out  # timeline bars

    def test_simulate_scaled_design(self, capsys):
        code = main(["simulate", "room", "hashgrid",
                     "--pe-scale", "2", "--sram-scale", "2"])
        assert code == 0
        assert "FPS" in capsys.readouterr().out

    def test_render_small_frame(self, capsys):
        code = main(["render", "lego", "--pipeline", "gaussian", "--size", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "workload counters" in out

    def test_report_selected(self, capsys):
        code = main(["report", "table3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "module status" in out.lower() or "Table III" in out

    def test_unknown_scene_is_clean_error(self, capsys):
        code = main(["simulate", "atlantis", "hashgrid"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_experiment_is_clean_error(self, capsys):
        code = main(["report", "table99"])
        assert code == 2
        assert "unknown experiments" in capsys.readouterr().err
