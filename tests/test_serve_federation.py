"""Planet-scale federation: topology parsing, the global router, gossip
replication, chaos goldens.

The unit half exercises the pieces in isolation on stubbed-compile
two-region planets (so no real pipeline compile runs); the golden half
pins the ``ext_federation`` experiment arm by arm — one deterministic
three-region diurnal workload under a region outage plus a replication
partition, replayed healthy / naive / federated. A router or gossip
change that moves serving results must update the frozen table.
"""

import json
from collections import OrderedDict
from dataclasses import dataclass

import pytest

from repro.analysis.federation import (
    FEDERATION_ARMS,
    FEDERATION_WORKLOAD,
    _workload_streams,
    federation_arm,
)
from repro.compile.workloads import gemm_workload
from repro.core.microops import MicroOp, MicroOpProgram
from repro.errors import ConfigError, SimulationError
from repro.serve import (
    ChannelPartition,
    FederationConfig,
    FederationPlan,
    FederationReport,
    GlobalRouter,
    Region,
    RegionOutage,
    RegionSpec,
    generate_federation_traffic,
    parse_region_spec,
    region_rtt_s,
    simulate_federation,
)

#: Per-pipeline synthetic frame costs (matches test_serve_golden).
_PIPELINE_MACS = {"hashgrid": 2e7, "gaussian": 1.6e8, "mesh": 4e7}


def stub_program(pipeline):
    program = MicroOpProgram(pipeline=pipeline, pixels=1024)
    program.append(
        MicroOp.GEMM,
        "mlp",
        gemm_workload(macs=_PIPELINE_MACS.get(pipeline, 5e7), rows=1e3,
                      in_width=32, out_width=4, weight_bytes=1e4),
    )
    return program


def stub_compile(key):
    return stub_program(key[1])


# ----------------------------------------------------------------------
# Topology and config parsing
# ----------------------------------------------------------------------
class TestRegionSpec:
    def test_parse_full_topology(self):
        specs = parse_region_spec(
            "us-east:tz=-5,chips=3;eu-west:tz=1,cost=1.2;ap-tokyo:tz=9,cap=8")
        assert [s.name for s in specs] == ["us-east", "eu-west", "ap-tokyo"]
        assert specs[0].tz_offset_h == -5 and specs[0].n_chips == 3
        assert specs[1].cost_factor == 1.2 and specs[1].n_chips == 2
        assert specs[2].cache_capacity == 8

    def test_parse_defaults(self):
        (spec,) = parse_region_spec("solo")
        assert spec == RegionSpec(name="solo")

    def test_parse_policy_field(self):
        (spec,) = parse_region_spec("a:policy=round-robin,chips=1")
        assert spec.policy == "round-robin" and spec.n_chips == 1

    def test_bad_field_is_config_error(self):
        with pytest.raises(ConfigError, match="bad region field"):
            parse_region_spec("a:zone=5")

    def test_bad_number_chains_the_cause(self):
        with pytest.raises(ConfigError, match="not a number") as info:
            parse_region_spec("a:tz=five")
        assert isinstance(info.value.__cause__, ValueError)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigError, match="repeats"):
            parse_region_spec("a;a")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigError, match="no regions"):
            parse_region_spec(" ; ")

    def test_reserved_characters_rejected(self):
        for name in ("a|b", "a@b", ""):
            with pytest.raises(ConfigError):
                RegionSpec(name=name)

    def test_validation(self):
        with pytest.raises(ConfigError, match="at least one chip"):
            RegionSpec(name="a", n_chips=0)
        with pytest.raises(ConfigError, match="cost factor"):
            RegionSpec(name="a", cost_factor=0.0)


class TestFederationConfig:
    def test_staleness_bound_is_cadence_plus_wire(self):
        config = FederationConfig(sync_cadence_s=0.5, gossip_delay_s=0.25)
        assert config.staleness_bound_s == pytest.approx(0.75)

    def test_unknown_router_rejected(self):
        with pytest.raises(ConfigError, match="unknown router"):
            FederationConfig(router="oracle")

    def test_negative_knobs_rejected(self):
        with pytest.raises(ConfigError):
            FederationConfig(sync_cadence_s=0.0)
        with pytest.raises(ConfigError):
            FederationConfig(failover_cost_s=-1.0)

    def test_rtt_ring_wraps(self):
        config = FederationConfig()
        a = RegionSpec(name="a", tz_offset_h=-11.0)
        b = RegionSpec(name="b", tz_offset_h=11.0)
        # -11h and +11h are 2 ring-hours apart, not 22.
        expected = config.local_rtt_s + 2.0 * config.rtt_per_hour_s
        assert region_rtt_s(config, a, b) == pytest.approx(expected)
        assert region_rtt_s(config, b, a) == pytest.approx(expected)
        assert region_rtt_s(config, a, a) == config.local_rtt_s


class TestFederationPlan:
    def test_parse_outage_and_partition(self):
        plan = FederationPlan.parse(
            "outage=eu@0.6+1.2;partition=us|ap@0.4+0.8")
        assert plan.region_down("eu", 0.7)
        assert not plan.region_down("eu", 1.9)
        assert plan.channel_blocked("us", "ap", 0.5)
        assert plan.channel_blocked("ap", "us", 0.5)  # symmetric
        assert not plan.channel_blocked("us", "ap", 1.3)
        assert not plan.channel_blocked("us", "eu", 0.5)

    def test_parse_permanent_outage(self):
        plan = FederationPlan.parse("outage=eu@0.5")
        assert plan.region_down("eu", 1e9)
        assert not plan.region_down("eu", 0.4)

    def test_parse_errors(self):
        with pytest.raises(ConfigError, match="bad federation fault"):
            FederationPlan.parse("quake=eu@0.5")
        with pytest.raises(ConfigError, match="missing '@start'"):
            FederationPlan.parse("outage=eu")
        with pytest.raises(ConfigError, match="two regions"):
            FederationPlan.parse("partition=us@0.5")
        with pytest.raises(ConfigError, match="bad time") as info:
            FederationPlan.parse("outage=eu@noon")
        assert isinstance(info.value.__cause__, ValueError)

    def test_unknown_region_rejected_at_validation(self):
        plan = FederationPlan.parse("outage=atlantis@0.1")
        with pytest.raises(ConfigError, match="unknown region"):
            plan.validate_regions(["us", "eu"])

    def test_partition_needs_distinct_regions(self):
        with pytest.raises(ConfigError, match="distinct"):
            ChannelPartition(a="us", b="us", start_s=0.0)

    def test_outage_window_validation(self):
        with pytest.raises(ConfigError, match="end after it starts"):
            RegionOutage(region="us", start_s=1.0, end_s=1.0)


# ----------------------------------------------------------------------
# The global router, in isolation
# ----------------------------------------------------------------------
def make_planet(config, plan=None, tz_b=6.0, chips=2):
    specs = (RegionSpec(name="a", n_chips=chips),
             RegionSpec(name="b", tz_offset_h=tz_b, n_chips=chips))
    regions = OrderedDict(
        (spec.name, Region(spec, config, compile_fn=stub_compile))
        for spec in specs)
    router = GlobalRouter(regions, config,
                          plan if plan is not None else FederationPlan())
    return specs, regions, router


def one_request(scene="lego", arrival_s=0.0, request_id=0):
    from repro.serve import RenderRequest

    return RenderRequest(request_id=request_id, arrival_s=arrival_s,
                         scene=scene, pipeline="hashgrid",
                         width=64, height=64, slo_s=0.1)


class TestGlobalRouter:
    def test_naive_routes_home(self):
        config = FederationConfig(router="naive")
        _, _, router = make_planet(config)
        region, extra, failover = router.route(one_request(), "b", 0.0)
        assert region == "b" and not failover
        assert extra == config.local_rtt_s

    def test_naive_fails_when_home_is_down(self):
        config = FederationConfig(router="naive")
        plan = FederationPlan.parse("outage=b@0.0")
        _, _, router = make_planet(config, plan)
        region, extra, failover = router.route(one_request(), "b", 0.0)
        assert region is None and extra == 0.0 and not failover
        assert router.stats()["n_unroutable"] == 1

    def test_federated_prefers_home_when_idle(self):
        config = FederationConfig()
        _, _, router = make_planet(config)
        region, extra, failover = router.route(one_request(), "b", 0.0)
        assert region == "b" and not failover
        assert extra == config.local_rtt_s
        assert router.stats()["n_remote"] == 0

    def test_failover_charges_rtt_plus_migration(self):
        config = FederationConfig()
        specs, _, router = make_planet(config,
                                       FederationPlan.parse("outage=b@0.0"))
        region, extra, failover = router.route(one_request(), "b", 0.0)
        assert region == "a" and failover
        rtt = region_rtt_s(config, specs[1], specs[0])
        assert extra == pytest.approx(rtt + config.failover_cost_s)
        assert router.stats()["n_failovers"] == 1

    def test_no_region_at_all_is_unroutable(self):
        plan = FederationPlan.parse("outage=a@0.0;outage=b@0.0")
        _, _, router = make_planet(FederationConfig(), plan)
        region, _, _ = router.route(one_request(), "a", 0.0)
        assert region is None
        assert router.stats()["n_unroutable"] == 1

    def test_sticky_session_holds_within_margin(self):
        # One chip and a tiny sync epoch: home overflows after three
        # assignments, but the sticky session rides out marginal score
        # noise until the backlog truly exceeds the margin.
        config = FederationConfig(sync_cadence_s=0.01)
        _, _, router = make_planet(config, tz_b=0.5, chips=1)
        placed = [router.route(one_request("s"), "a", 0.0)[0]
                  for _ in range(5)]
        assert placed[:4] == ["a"] * 4
        assert placed[4] == "a"  # held by stickiness, not by score
        assert router.stats()["n_sticky_holds"] == 1
        # A fresh scene sees the same overflow without a sticky pass.
        region, _, _ = router.route(one_request("t"), "a", 0.0)
        assert region == "b"
        assert router.stats()["n_remote"] == 1

    def test_begin_epoch_resets_the_load_ledger(self):
        config = FederationConfig(sync_cadence_s=0.01)
        _, _, router = make_planet(config, tz_b=0.5, chips=1)
        for _ in range(6):
            router.route(one_request("s"), "a", 0.0)
        router.begin_epoch()
        region, _, _ = router.route(one_request("t"), "a", 0.0)
        assert region == "a"


# ----------------------------------------------------------------------
# Time-zone-shifted traffic
# ----------------------------------------------------------------------
class TestFederationTraffic:
    def test_streams_are_phase_shifted_and_renumbered(self):
        specs = parse_region_spec("a;b:tz=12")
        streams = generate_federation_traffic(
            specs, n_requests_per_region=20, rate_rps=100.0, seed=7,
            pattern="steady")
        assert list(streams) == ["a", "b"]
        assert all(len(s) == 20 for s in streams.values())
        # b's wave rides half a diurnal period behind a's.
        assert min(r.arrival_s for r in streams["b"]) >= 2.0
        assert max(r.arrival_s for r in streams["a"]) < 2.0
        # Request ids are one global arrival-ordered sequence.
        merged = sorted((r for s in streams.values() for r in s),
                        key=lambda r: r.arrival_s)
        assert [r.request_id for r in merged] == list(range(40))

    def test_streams_are_deterministic(self):
        specs = parse_region_spec("a;b:tz=9")
        one = generate_federation_traffic(specs, n_requests_per_region=10,
                                          seed=3)
        two = generate_federation_traffic(specs, n_requests_per_region=10,
                                          seed=3)
        assert one == two

    def test_regions_draw_independent_streams(self):
        specs = parse_region_spec("a;b")  # same time zone
        streams = generate_federation_traffic(specs, n_requests_per_region=10,
                                              seed=3, pattern="bursty")
        a = [r.arrival_s for r in streams["a"]]
        b = [r.arrival_s for r in streams["b"]]
        assert a != b


# ----------------------------------------------------------------------
# The federation loop on a stubbed two-region planet
# ----------------------------------------------------------------------
def run_planet(config, plan=None, tz_b=12.0):
    specs = parse_region_spec(f"a:chips=2;b:tz={tz_b},chips=2")
    streams = generate_federation_traffic(
        specs, n_requests_per_region=30, rate_rps=200.0, seed=5,
        pattern="steady", slo_s=0.1)
    return simulate_federation(specs, streams, config=config, plan=plan,
                               compile_fn=stub_compile)


class TestSimulateFederation:
    def test_conservation_without_faults(self):
        report = run_planet(FederationConfig())
        assert report.n_offered == 60
        assert report.n_requests == 60
        assert report.n_shed == 0 and report.n_failed == 0

    def test_deterministic_reports(self):
        one = json.dumps(run_planet(FederationConfig()).to_dict(),
                         sort_keys=True)
        two = json.dumps(run_planet(FederationConfig()).to_dict(),
                         sort_keys=True)
        assert one == two

    def test_naive_outage_strands_the_wave(self):
        # b is down for its entire (phase-shifted) wave: naive routing
        # hard-fails all 30 of its requests, and the ledger still closes.
        plan = FederationPlan.parse("outage=b@1.9")
        report = run_planet(
            FederationConfig(router="naive", gossip=False), plan)
        assert report.n_failed == 30
        assert report.n_requests == 30
        assert report.n_offered == 60
        assert report.goodput_slo_attainment <= 0.5
        assert all("down" in record.reason for record in report.failed)

    def test_federated_outage_fails_over(self):
        plan = FederationPlan.parse("outage=b@1.9")
        config = FederationConfig()
        report = run_planet(config, plan)
        assert report.n_failed == 0
        assert report.n_failovers == 30
        # Every failover paid the wire plus the migration surcharge.
        for resp in report.completed:
            if resp.failover:
                assert resp.extra_latency_s >= config.failover_cost_s
                assert resp.latency_s > resp.response.latency_s

    def test_gossip_warms_the_remote_wave(self):
        # b's wave arrives half a period after a's — far beyond the
        # staleness bound — so with gossip on, b never cold-compiles.
        warm = run_planet(FederationConfig())
        cold = run_planet(FederationConfig(gossip=False))
        assert warm.regions["b"]["cache"]["misses"] == 0
        assert warm.regions["b"]["gossip_warm_installs"] > 0
        assert cold.regions["b"]["cache"]["misses"] > 0
        assert cold.regions["b"]["gossip_warm_installs"] == 0
        assert cold.gossip_stats["messages"] == 0

    def test_partition_blocks_the_warmth(self):
        # Sever the only replication channel: gossip runs but nothing
        # crosses, so b cold-compiles exactly as if gossip were off.
        plan = FederationPlan.parse("partition=a|b@0.0")
        report = run_planet(FederationConfig(), plan)
        assert report.regions["b"]["gossip_warm_installs"] == 0
        assert report.regions["b"]["cache"]["misses"] > 0
        assert report.gossip_stats["warm_installs"] == 0

    def test_report_conservation_is_enforced(self):
        config = FederationConfig()
        specs = parse_region_spec("a")
        with pytest.raises(SimulationError, match="lost requests"):
            FederationReport(config=config, specs=specs, completed=[],
                             shed=[], failed=[], n_offered=1, n_epochs=1)

    def test_single_region_planet_degenerates_cleanly(self):
        specs = parse_region_spec("solo:chips=2")
        report = simulate_federation(
            specs, n_requests_per_region=20, rate_rps=200.0, seed=1,
            pattern="steady", compile_fn=stub_compile)
        assert report.n_offered == report.n_requests == 20
        assert report.n_remote == 0
        assert report.gossip_stats["messages"] == 0

    def test_plan_naming_unknown_region_is_rejected(self):
        with pytest.raises(ConfigError, match="unknown region"):
            run_planet(FederationConfig(),
                       FederationPlan.parse("outage=mars@0.1"))


# ----------------------------------------------------------------------
# Frozen federation chaos goldens: the ext_federation experiment arms.
# ----------------------------------------------------------------------
#: The scenario is imported from the analysis experiment itself so the
#: goldens pin exactly what ``repro report ext_federation`` prints:
#: three regions riding a rolling diurnal wave, eu-west offline through
#: the heart of its wave, the us-east <-> ap-tokyo gossip channel
#: partitioned early on.
@dataclass(frozen=True)
class FederationGolden:
    slo_attainment: float
    goodput: float
    p50_ms: float
    p99_ms: float
    n_failed: int
    n_failovers: int
    warm_installs: int
    chip_seconds: float
    cost_units: float


GOLDEN_FEDERATION = {
    "healthy": FederationGolden(
        slo_attainment=0.993333333, goodput=0.993333333,
        p50_ms=29.039174823, p99_ms=113.739330324,
        n_failed=0, n_failovers=0, warm_installs=12,
        chip_seconds=39.718649587, cost_units=40.610402191),
    "naive": FederationGolden(
        slo_attainment=0.997382199, goodput=0.846666667,
        p50_ms=27.757721409, p99_ms=110.635122029,
        n_failed=68, n_failovers=0, warm_installs=0,
        chip_seconds=38.840817559, cost_units=39.557003756),
    "federated": FederationGolden(
        slo_attainment=0.928888889, goodput=0.928888889,
        p50_ms=29.041222823, p99_ms=155.120314205,
        n_failed=0, n_failovers=68, warm_installs=6,
        chip_seconds=41.765936251, cost_units=42.482122448),
}


@pytest.mark.parametrize("arm", sorted(GOLDEN_FEDERATION))
def test_federation_numbers_are_frozen(arm):
    golden = GOLDEN_FEDERATION[arm]
    report = federation_arm(arm)
    assert report.slo_attainment == pytest.approx(
        golden.slo_attainment, rel=1e-9)
    assert report.goodput_slo_attainment == pytest.approx(
        golden.goodput, rel=1e-9)
    assert report.latency_p(50) * 1e3 == pytest.approx(golden.p50_ms,
                                                       rel=1e-6)
    assert report.latency_p(99) * 1e3 == pytest.approx(golden.p99_ms,
                                                       rel=1e-6)
    assert report.n_failed == golden.n_failed
    assert report.n_failovers == golden.n_failovers
    assert report.gossip_stats["warm_installs"] == golden.warm_installs
    assert report.total_chip_seconds == pytest.approx(
        golden.chip_seconds, rel=1e-9)
    assert report.total_cost_units == pytest.approx(
        golden.cost_units, rel=1e-9)
    # Conservation closes on every arm, chaos or not.
    assert report.n_offered == (report.n_requests + report.n_shed
                                + report.n_failed)


def test_goldens_cover_every_arm():
    assert set(GOLDEN_FEDERATION) == set(FEDERATION_ARMS)


def test_failover_recovers_the_goodput_cliff():
    # The acceptance headline: under region loss the federated router
    # fails the stranded wave over cross-region (every one a failover,
    # none a failure) and wins back >= 5 goodput points over naive
    # home-pinned routing (the frozen numbers above say 8.2).
    naive = federation_arm("naive")
    federated = federation_arm("federated")
    assert naive.n_failed > 0
    assert federated.n_failed == 0
    assert federated.n_failovers == naive.n_failed
    assert (federated.goodput_slo_attainment
            - naive.goodput_slo_attainment) >= 0.05


def test_gossip_warms_remote_regions_to_zero_cold_misses():
    # The warm-start headline: eu-west's wave rises first and pays the
    # planet's only cold compiles; the two regions whose waves ride
    # behind it serve their entire day without a single cold miss —
    # warmed purely by gossip within the staleness bound. With
    # replication off, each region pays its own cold-miss storm.
    healthy = federation_arm("healthy")
    for name in ("us-east", "ap-tokyo"):
        assert healthy.regions[name]["cache"]["misses"] == 0
        assert healthy.regions[name]["gossip_warm_installs"] == 6
    assert healthy.regions["eu-west"]["cache"]["misses"] == 6

    specs, streams = _workload_streams(dict(FEDERATION_WORKLOAD))
    silent = simulate_federation(specs, streams,
                                 config=FederationConfig(gossip=False))
    for name in ("us-east", "eu-west", "ap-tokyo"):
        assert silent.regions[name]["cache"]["misses"] == 6
        assert silent.regions[name]["gossip_warm_installs"] == 0
