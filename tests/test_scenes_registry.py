"""Tests for the named-scene registry (dataset substitutes)."""

import numpy as np
import pytest

from repro.errors import SceneError
from repro.scenes import (
    NERF_SYNTHETIC_SCENES,
    UNBOUNDED_360_SCENES,
    UNBOUNDED_INDOOR_SCENES,
    get_scene,
    scene_names,
)


class TestRegistry:
    def test_dataset_sizes_match_papers(self):
        # NeRF-Synthetic has 8 scenes, Unbounded-360's public set has 7.
        assert len(NERF_SYNTHETIC_SCENES) == 8
        assert len(UNBOUNDED_360_SCENES) == 7
        assert set(UNBOUNDED_INDOOR_SCENES) <= set(UNBOUNDED_360_SCENES)
        assert UNBOUNDED_INDOOR_SCENES == ("room", "counter", "kitchen", "bonsai")

    def test_scene_names_filters(self):
        assert set(scene_names("synthetic")) == set(NERF_SYNTHETIC_SCENES)
        assert set(scene_names("unbounded")) == set(UNBOUNDED_360_SCENES)
        assert set(scene_names()) == set(NERF_SYNTHETIC_SCENES) | set(UNBOUNDED_360_SCENES)
        with pytest.raises(SceneError):
            scene_names("indoor")

    def test_unknown_scene_raises_with_choices(self):
        with pytest.raises(SceneError, match="available"):
            get_scene("garden_of_eden")

    @pytest.mark.parametrize("name", NERF_SYNTHETIC_SCENES)
    def test_synthetic_scenes_build(self, name):
        spec = get_scene(name)
        assert spec.kind == "synthetic"
        assert not spec.unbounded
        field = spec.field()
        assert field.background == "white"
        assert len(field.primitives) >= 3

    @pytest.mark.parametrize("name", UNBOUNDED_360_SCENES)
    def test_unbounded_scenes_build(self, name):
        spec = get_scene(name)
        assert spec.unbounded
        field = spec.field()
        assert field.unbounded
        assert field.background in ("dark", "sky")

    def test_field_cached_per_spec(self):
        spec = get_scene("lego")
        assert spec.field() is spec.field()

    def test_deterministic_rebuild(self):
        field_a = get_scene("drums").builder()
        field_b = get_scene("drums").builder()
        pts = np.random.default_rng(0).uniform(-1, 1, (128, 3))
        assert np.array_equal(field_a.density(pts), field_b.density(pts))

    def test_bounds_contain_finite_primitives(self):
        for name in NERF_SYNTHETIC_SCENES:
            field = get_scene(name).field()
            lo, hi = field.bounds
            for prim in field.primitives:
                radius = prim.bounding_radius()
                if not np.isfinite(radius):
                    continue
                assert np.all(prim.center - radius >= lo - 1e-9), name
                assert np.all(prim.center + radius <= hi + 1e-9), name

    def test_complexity_positive(self):
        for name in scene_names():
            assert get_scene(name).complexity > 0
