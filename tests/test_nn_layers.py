"""Unit tests for the neural-network substrate: layers and MLPs."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn import Dense, MLP, relu, relu_grad, sigmoid, sigmoid_grad


class TestActivations:
    def test_relu_clamps_negative(self):
        x = np.array([-2.0, -0.1, 0.0, 0.5, 3.0])
        assert np.array_equal(relu(x), [0.0, 0.0, 0.0, 0.5, 3.0])

    def test_relu_grad_is_indicator(self):
        x = np.array([-1.0, 0.5])
        assert np.array_equal(relu_grad(x), [0.0, 1.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-50, 50, 101)
        s = sigmoid(x)
        assert np.all((s >= 0) & (s <= 1))
        assert np.allclose(s + sigmoid(-x), 1.0)

    def test_sigmoid_extreme_values_stable(self):
        assert np.isfinite(sigmoid(np.array([-1e4, 1e4]))).all()

    def test_sigmoid_grad_peaks_at_zero(self):
        g = sigmoid_grad(np.array([0.0]))
        assert np.allclose(g, 0.25)


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(5, 7, rng=np.random.default_rng(0))
        out = layer.forward(rng.normal(size=(11, 5)))
        assert out.shape == (11, 7)

    def test_linear_activation_is_affine(self):
        layer = Dense(3, 2, activation="linear", rng=np.random.default_rng(0))
        x = np.eye(3)
        out = layer.forward(x)
        assert np.allclose(out, layer.weight + layer.bias)

    def test_backward_before_forward_raises(self):
        layer = Dense(3, 2)
        with pytest.raises(ConfigError):
            layer.backward(np.zeros((1, 2)))

    def test_unknown_activation_rejected(self):
        with pytest.raises(ConfigError):
            Dense(3, 2, activation="tanhh")

    def test_bad_widths_rejected(self):
        with pytest.raises(ConfigError):
            Dense(0, 2)

    def test_num_params(self):
        layer = Dense(4, 6)
        assert layer.num_params == 4 * 6 + 6

    def test_macs_per_sample(self):
        assert Dense(4, 6).macs_per_sample() == 24

    def test_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(3)
        layer = Dense(4, 3, activation="sigmoid", rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer.forward(x)
        loss_grad = np.ones_like(out)
        layer.backward(loss_grad)
        analytic = layer.grad_weight.copy()

        eps = 1e-6
        i, j = 2, 1
        layer.weight[i, j] += eps
        up = layer.forward(x).sum()
        layer.weight[i, j] -= 2 * eps
        down = layer.forward(x).sum()
        layer.weight[i, j] += eps
        numeric = (up - down) / (2 * eps)
        assert np.isclose(analytic[i, j], numeric, rtol=1e-4)


class TestMLP:
    def test_requires_two_widths(self):
        with pytest.raises(ConfigError):
            MLP([4])

    def test_layer_count_and_widths(self):
        mlp = MLP([4, 8, 8, 3])
        assert len(mlp.layers) == 3
        assert mlp.widths == (4, 8, 8, 3)

    def test_output_activation_applied_last(self):
        mlp = MLP([2, 4, 3], output_activation="sigmoid")
        out = mlp(np.random.default_rng(0).normal(size=(9, 2)))
        assert np.all((out >= 0) & (out <= 1))

    def test_num_params_sums_layers(self):
        mlp = MLP([4, 8, 3])
        assert mlp.num_params == (4 * 8 + 8) + (8 * 3 + 3)

    def test_macs_per_sample_sums_layers(self):
        mlp = MLP([4, 8, 3])
        assert mlp.macs_per_sample() == 4 * 8 + 8 * 3

    def test_storage_bytes_bf16(self):
        mlp = MLP([4, 8, 3])
        assert mlp.storage_bytes() == mlp.num_params * 2

    def test_parameters_and_gradients_align(self):
        mlp = MLP([3, 5, 2])
        x = np.random.default_rng(1).normal(size=(7, 3))
        out = mlp(x)
        mlp.backward(np.ones_like(out))
        params = mlp.parameters()
        grads = mlp.gradients()
        assert len(params) == len(grads) == 4
        for p, g in zip(params, grads):
            assert p.shape == g.shape

    def test_full_backward_matches_finite_difference(self):
        rng = np.random.default_rng(5)
        mlp = MLP([3, 6, 2], output_activation="linear", rng=rng)
        x = rng.normal(size=(4, 3))

        def loss():
            return float((mlp(x) ** 2).sum())

        out = mlp(x)
        mlp.backward(2.0 * out)
        analytic = mlp.layers[0].grad_weight[1, 2]

        eps = 1e-6
        mlp.layers[0].weight[1, 2] += eps
        up = loss()
        mlp.layers[0].weight[1, 2] -= 2 * eps
        down = loss()
        mlp.layers[0].weight[1, 2] += eps
        assert np.isclose(analytic, (up - down) / (2 * eps), rtol=1e-4)

    def test_deterministic_given_rng(self):
        a = MLP([3, 4, 2], rng=np.random.default_rng(9))
        b = MLP([3, 4, 2], rng=np.random.default_rng(9))
        x = np.ones((2, 3))
        assert np.array_equal(a(x), b(x))
