"""Tests for the energy, power, area, and gating models (Fig. 15)."""

import pytest

from repro.core.area import area_report
from repro.core.config import AcceleratorConfig
from repro.core.dataflow import phase_cost
from repro.core.energy import EnergyBreakdown, nameplate_power, phase_energy
from repro.core.gating import (
    IDLE_FRACTION_GATED,
    IDLE_FRACTION_UNGATED,
    idle_power_factor,
    module_activity,
)
from repro.core.microops import MicroOp, Workload


class TestArea:
    def test_total_matches_paper(self):
        report = area_report(AcceleratorConfig())
        assert report.total == pytest.approx(14.96, rel=1e-3)

    def test_breakdown_matches_fig15(self):
        frac = area_report(AcceleratorConfig()).breakdown()
        assert frac["computing_and_control_logic"] == pytest.approx(0.54, abs=0.01)
        assert frac["sram_inside_pe_array"] == pytest.approx(0.31, abs=0.01)
        assert frac["sram_outside_pe_array"] == pytest.approx(0.15, abs=0.01)

    def test_fractions_sum_to_one(self):
        frac = area_report(AcceleratorConfig()).breakdown()
        assert sum(frac.values()) == pytest.approx(1.0)

    def test_area_scales_with_configuration(self):
        base = area_report(AcceleratorConfig())
        bigger = area_report(AcceleratorConfig().scaled(pe_scale=2, sram_scale=2))
        assert bigger.logic == pytest.approx(2 * base.logic)
        assert bigger.pe_sram == pytest.approx(2 * base.pe_sram)
        assert bigger.global_sram == pytest.approx(2 * base.global_sram)


class TestNameplatePower:
    def test_typical_power_matches_paper(self):
        power = nameplate_power(AcceleratorConfig())
        assert power.chip_total == pytest.approx(5.78, rel=0.02)

    def test_breakdown_matches_fig15(self):
        frac = nameplate_power(AcceleratorConfig()).fractions()
        assert frac["computing_and_control_logic"] == pytest.approx(0.75, abs=0.02)
        assert frac["sram_inside_pe_array"] == pytest.approx(0.10, abs=0.02)
        assert frac["sram_outside_pe_array"] == pytest.approx(0.15, abs=0.02)

    def test_power_grows_with_array(self):
        small = nameplate_power(AcceleratorConfig()).chip_total
        large = nameplate_power(AcceleratorConfig().scaled(2, 2)).chip_total
        assert large > 1.5 * small


class TestPhaseEnergy:
    def _cost(self, op=MicroOp.GEMM):
        w = Workload(bf16_ops=1e6, int_ops=1e5, sfu_ops=1e4,
                     sram_accesses=1e6, dram_unique_bytes=1e6,
                     working_set_bytes=1e6, items=1e4)
        return phase_cost(op, w, AcceleratorConfig())

    def test_components_positive(self):
        e = phase_energy(MicroOp.GEMM, self._cost(), 1e5, AcceleratorConfig())
        assert e.compute_and_control > 0
        assert e.pe_sram > 0
        assert e.global_sram > 0
        assert e.dram > 0

    def test_dram_excluded_from_chip_total(self):
        e = phase_energy(MicroOp.GEMM, self._cost(), 1e5, AcceleratorConfig())
        assert e.chip_total == pytest.approx(
            e.compute_and_control + e.pe_sram + e.global_sram
        )

    def test_gating_reduces_idle_energy(self):
        cost = self._cost(MicroOp.SORTING)
        gated = phase_energy(MicroOp.SORTING, cost, 1e6, AcceleratorConfig(), gated=True)
        ungated = phase_energy(MicroOp.SORTING, cost, 1e6, AcceleratorConfig(), gated=False)
        assert gated.compute_and_control < ungated.compute_and_control

    def test_breakdown_add(self):
        a = EnergyBreakdown(1.0, 2.0, 3.0, 4.0)
        b = EnergyBreakdown(0.5, 0.5, 0.5, 0.5)
        a.add(b)
        assert (a.compute_and_control, a.pe_sram, a.global_sram, a.dram) == (
            1.5, 2.5, 3.5, 4.5,
        )


class TestGating:
    def test_idle_fractions_ordered(self):
        assert IDLE_FRACTION_GATED < IDLE_FRACTION_UNGATED

    def test_active_module_full_power(self):
        assert idle_power_factor(True, gated=True) == 1.0

    def test_idle_module_gated_vs_ungated(self):
        assert idle_power_factor(False, True) == IDLE_FRACTION_GATED
        assert idle_power_factor(False, False) == IDLE_FRACTION_UNGATED

    def test_sfus_idle_during_gemm(self):
        """Sec. VII-E's example: 'executing GEMM leaves the special
        function units idle'."""
        assert not module_activity(MicroOp.GEMM).sfu_active
        assert module_activity(MicroOp.COMBINED_GRID).sfu_active

    def test_reduction_network_active_only_for_grids(self):
        assert module_activity(MicroOp.COMBINED_GRID).reduction_network_active
        assert module_activity(MicroOp.DECOMPOSED_GRID).reduction_network_active
        assert not module_activity(MicroOp.SORTING).reduction_network_active
        assert not module_activity(MicroOp.GEMM).reduction_network_active
