"""Tests for the workload constructors, renderer base classes, and
error-path behaviour across modules (failure injection)."""

import numpy as np
import pytest

from repro.compile.workloads import (
    gemm_workload,
    geometric_workload,
    grid_workload,
    sorting_workload,
)
from repro.errors import (
    CompileError,
    ConfigError,
    ReproError,
    SceneError,
    SimulationError,
    UnsupportedPipelineError,
)
from repro.renderers.base import RenderStats, as_image
from repro.renderers.volume import VolumeRendererBase
from repro.scenes import Camera, get_scene


class TestWorkloadConstructors:
    def test_gemm_accounts_weight_reads_and_psums(self):
        w = gemm_workload(macs=1000, rows=10, in_width=8, out_width=4,
                          weight_bytes=64)
        assert w.bf16_ops == 1000
        assert w.sram_accesses == 1000 + 10 * 4
        assert w.working_set_bytes == 64
        assert w.streaming_bytes == 10 * (8 + 4) * 2

    def test_gemm_fused_streams_nothing(self):
        w = gemm_workload(macs=10, rows=5, in_width=8, out_width=4,
                          weight_bytes=64, stream_in=False, stream_out=False)
        assert w.streaming_bytes == 0

    def test_grid_touched_capped_by_table(self):
        w = grid_workload(lookups=1e9, fetch_bytes=4, table_bytes=1e6,
                          int_ops_per_lookup=6)
        assert w.dram_unique_bytes == 1e6
        small = grid_workload(lookups=10, fetch_bytes=4, table_bytes=1e6,
                              int_ops_per_lookup=6)
        assert small.dram_unique_bytes == 40

    def test_geometric_counts_zbuffer_traffic(self):
        w = geometric_workload(tests=100, primitives=10, primitive_bytes=28)
        assert w.int_ops == 600
        assert w.sram_accesses == 210
        assert w.dram_unique_bytes == 280

    def test_sorting_nlogn_passes(self):
        w = sorting_workload(elements=1024, per_patch=256)
        assert w.int_ops == 1024 * 8          # log2(256) passes
        assert w.sram_accesses == 2 * 1024 * 8
        tiny = sorting_workload(elements=4, per_patch=1)
        assert tiny.int_ops == 4              # minimum one pass


class TestRenderStats:
    def test_merge_sums_counters(self):
        a = RenderStats({"rays": 10.0})
        b = RenderStats({"rays": 5.0, "mlp_macs": 7.0})
        merged = a.merge(b)
        assert merged.counts == {"rays": 15.0, "mlp_macs": 7.0}
        assert a.counts == {"rays": 10.0}  # originals untouched

    def test_scaled(self):
        s = RenderStats({"rays": 10.0}).scaled(2.5)
        assert s.counts["rays"] == 25.0

    def test_per_pixel_requires_pixels(self):
        with pytest.raises(SceneError):
            RenderStats({"rays": 1.0}).per_pixel()
        s = RenderStats({"pixels": 4.0, "rays": 8.0})
        assert s.per_pixel()["rays"] == 2.0

    def test_as_image_clips(self):
        flat = np.array([[-0.5, 0.5, 1.5]])
        img = as_image(flat, 1, 1)
        assert img.min() == 0.0 and img.max() == 1.0


class TestVolumeBaseValidation:
    def test_rejects_bad_parameters(self, lego_field):
        with pytest.raises(ConfigError):
            VolumeRendererBase(lego_field, samples_per_ray=1, occupancy=None)
        with pytest.raises(ConfigError):
            VolumeRendererBase(lego_field, samples_per_ray=8, occupancy=None,
                               chunk=0)

    def test_shade_samples_is_abstract(self, lego_field):
        base = VolumeRendererBase(lego_field, samples_per_ray=8, occupancy=None)
        with pytest.raises(NotImplementedError):
            base.render(Camera(4, 4))

    def test_stop_depth_limits_live_samples(self, kilonerf_model, lego_field):
        from repro.renderers.nerf import NerfRenderer

        renderer = NerfRenderer(kilonerf_model, lego_field)
        camera = Camera(8, 8, pose=np.eye(4))
        origins, dirs = camera.rays()
        stats_near = RenderStats()
        stats_far = RenderStats()
        near = np.full(camera.num_pixels, 0.2)
        far = np.full(camera.num_pixels, 100.0)
        renderer.march(origins, dirs, stats_near, stop_depth=near)
        renderer.march(origins, dirs, stats_far, stop_depth=far)
        assert stats_near.get("samples_shaded") <= stats_far.get("samples_shaded")


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for err in (ConfigError, SceneError, CompileError, SimulationError):
            assert issubclass(err, ReproError)

    def test_unsupported_pipeline_payload(self):
        err = UnsupportedPipelineError("ChipX", "mesh")
        assert isinstance(err, ReproError)
        assert err.device == "ChipX"
        assert err.pipeline == "mesh"
        assert "ChipX" in str(err)


class TestAnalysisRunner:
    def test_resolution_for_kind(self):
        from repro.analysis.runner import resolution_for

        assert resolution_for("lego") == (800, 800)
        assert resolution_for("room") == (1280, 720)

    def test_scene_kind_lookup(self):
        assert get_scene("lego").kind == "synthetic"
        assert get_scene("bicycle").kind == "unbounded"
