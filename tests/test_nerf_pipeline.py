"""Tests for the MLP pipeline: encoding, sampling, KiloNeRF, rendering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, SceneError
from repro.renderers.nerf import (
    NerfRenderer,
    OccupancyGrid,
    encoding_width,
    positional_encoding,
    sample_along_rays,
)
from repro.renderers.nerf.sampling import _uncontract
from repro.scenes import Camera, contract_unbounded, orbit_poses


class TestEncoding:
    def test_width_formula(self):
        assert encoding_width(3, 4) == 3 * (1 + 8)
        assert encoding_width(3, 0, include_input=False) == 0

    def test_output_matches_width(self):
        x = np.zeros((5, 3))
        out = positional_encoding(x, 4)
        assert out.shape == (5, encoding_width(3, 4))

    def test_contains_input_when_requested(self):
        x = np.array([[0.25, -0.5, 0.75]])
        out = positional_encoding(x, 2)
        assert np.allclose(out[0, :3], x[0])

    def test_sin_cos_identity(self):
        x = np.random.default_rng(0).uniform(-1, 1, (16, 3))
        out = positional_encoding(x, 3, include_input=False)
        # Check sin^2 + cos^2 = 1 per frequency block.
        for k in range(3):
            s = out[:, 6 * k : 6 * k + 3]
            c = out[:, 6 * k + 3 : 6 * k + 6]
            assert np.allclose(s**2 + c**2, 1.0, atol=1e-12)

    def test_negative_freqs_rejected(self):
        with pytest.raises(ConfigError):
            positional_encoding(np.zeros((1, 3)), -1)

    @given(st.integers(0, 6))
    @settings(max_examples=10, deadline=None)
    def test_values_bounded(self, n_freqs):
        x = np.random.default_rng(1).uniform(-1, 1, (8, 3))
        out = positional_encoding(x, n_freqs)
        assert np.all(np.abs(out) <= max(1.0, np.abs(x).max()) + 1e-12)


class TestSampling:
    def test_sample_count_and_spacing(self):
        o = np.zeros((2, 3))
        d = np.tile([0, 0, 1.0], (2, 1))
        pts, dt = sample_along_rays(o, d, (1.0, 3.0), 8)
        assert pts.shape == (2, 8, 3)
        assert np.isclose(dt, 0.25)
        assert np.allclose(np.diff(pts[0, :, 2]), 0.25)

    def test_stratified_stays_in_bins(self):
        rng = np.random.default_rng(0)
        o = np.zeros((4, 3))
        d = np.tile([1.0, 0, 0], (4, 1))
        pts, dt = sample_along_rays(o, d, (0.0, 1.0), 10, rng=rng)
        xs = pts[..., 0]
        bins = np.floor(xs / dt).astype(int)
        assert np.all((bins >= 0) & (bins <= 9))

    def test_bad_inputs(self):
        o = np.zeros((1, 3))
        d = np.ones((1, 3))
        with pytest.raises(SceneError):
            sample_along_rays(o, d, (1.0, 1.0), 8)
        with pytest.raises(SceneError):
            sample_along_rays(o, d, (0.0, 1.0), 1)


class TestOccupancyGrid:
    def test_marks_matter_occupied(self, lego_field):
        grid = OccupancyGrid(lego_field, resolution=16)
        # Centroid of the lego tower is inside matter.
        centers = np.array([p.center for p in lego_field.primitives])
        assert grid.query(centers).mean() > 0.7

    def test_far_points_empty(self, lego_field):
        grid = OccupancyGrid(lego_field, resolution=16)
        far = np.array([[50.0, 50.0, 50.0]])
        assert not grid.query(far)[0]

    def test_occupancy_between_zero_and_one(self, lego_field):
        grid = OccupancyGrid(lego_field, resolution=16)
        assert 0.0 < grid.occupancy < 1.0

    def test_storage_is_one_bit_per_cell(self, lego_field):
        grid = OccupancyGrid(lego_field, resolution=16)
        assert grid.storage_bytes() == 16**3 // 8

    def test_contracted_grid_for_unbounded(self, room_field):
        grid = OccupancyGrid(room_field, resolution=16)
        assert grid.contracted
        # Distant content (beyond the unit ball) is still queryable.
        assert grid.query(np.array([[6.0, 0.0, 0.0]])).shape == (1,)

    @given(
        st.tuples(st.floats(-0.99, 0.99), st.floats(-0.99, 0.99), st.floats(-0.99, 0.99))
    )
    @settings(max_examples=50, deadline=None)
    def test_uncontract_inverts_contract(self, point):
        p = np.array([point])
        assert np.allclose(_uncontract(contract_unbounded(p)), p, atol=1e-9)

    def test_uncontract_inverts_outside_ball(self):
        p = np.array([[3.0, -2.0, 1.0], [10.0, 0.0, 0.0]])
        assert np.allclose(_uncontract(contract_unbounded(p)), p, rtol=1e-6)


class TestKiloNeRF:
    def test_cell_partition(self, kilonerf_model, rng):
        pts = rng.uniform(kilonerf_model.lo, kilonerf_model.hi, (256, 3))
        cells, local = kilonerf_model.cell_of(pts)
        assert np.all((cells >= 0) & (cells < kilonerf_model.n_cells))
        assert np.all((local >= -1.0) & (local <= 1.0))

    def test_forward_cells_matches_manual(self, kilonerf_model, rng):
        x = rng.normal(size=(16, kilonerf_model.input_width))
        cells = rng.integers(0, kilonerf_model.n_cells, 16)
        out = kilonerf_model.forward_cells(cells, x)
        # Manual per-point evaluation.
        for i in range(16):
            c = cells[i]
            h = np.maximum(x[i] @ kilonerf_model.w1[c] + kilonerf_model.b1[c], 0)
            h = np.maximum(h @ kilonerf_model.w2[c] + kilonerf_model.b2[c], 0)
            expected = h @ kilonerf_model.w3[c] + kilonerf_model.b3[c]
            assert np.allclose(out[i], expected, atol=1e-10)

    def test_query_ranges(self, kilonerf_model, rng):
        pts = rng.uniform(-1, 1, (64, 3))
        dirs = rng.normal(size=(64, 3))
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        sigma, rgb = kilonerf_model.query(pts, dirs)
        assert np.all(sigma >= 0)
        assert np.all((rgb >= 0) & (rgb <= 1))

    def test_empty_cells_yield_zero_density(self, kilonerf_model):
        empty_cells = np.nonzero(kilonerf_model.cell_empty)[0]
        if len(empty_cells) == 0:
            pytest.skip("no empty cells in this fixture")
        # Build a point in the middle of the first empty cell.
        c = empty_cells[0]
        g = kilonerf_model.grid_size
        idx = np.array([c // (g * g), (c // g) % g, c % g])
        unit = (idx + 0.5) / g
        pt = kilonerf_model.lo + unit * (kilonerf_model.hi - kilonerf_model.lo)
        sigma, _ = kilonerf_model.query(pt[None], np.array([[0, 0, 1.0]]))
        assert sigma[0] == 0.0

    def test_training_fits_field(self, kilonerf_model, lego_field, rng):
        pts = rng.uniform(-0.8, 0.8, (512, 3))
        dirs = np.tile([0, 0, 1.0], (512, 1))
        sigma_t, _ = lego_field.density_and_color(pts, dirs)
        sigma_p, _ = kilonerf_model.query(pts, dirs)
        # Trained model separates matter from empty space.
        dense = sigma_t > 20
        if dense.sum() > 4 and (~dense).sum() > 4:
            assert sigma_p[dense].mean() > 3 * max(sigma_p[~dense].mean(), 1e-6)

    def test_storage_and_macs(self, kilonerf_model):
        assert kilonerf_model.storage_bytes() > kilonerf_model.num_params * 2 - 1
        assert kilonerf_model.macs_per_sample() > 0


class TestNerfRenderer:
    def test_render_shapes_and_counters(self, kilonerf_model, lego_field, lego_camera):
        renderer = NerfRenderer(kilonerf_model, lego_field)
        image, stats = renderer.render(lego_camera)
        assert image.shape == (32, 32, 3)
        assert stats.get("rays") == 1024
        assert stats.get("samples_total") == 1024 * kilonerf_model.samples_per_ray
        assert stats.get("samples_shaded") <= stats.get("samples_total")
        assert stats.get("samples_effective") <= stats.get("samples_shaded")

    def test_pixel_reuse_cuts_rays(self, kilonerf_model, lego_field, lego_camera):
        full = NerfRenderer(kilonerf_model, lego_field)
        reuse = NerfRenderer(kilonerf_model, lego_field, pixel_reuse=4)
        _, stats_full = full.render(lego_camera)
        img, stats_reuse = reuse.render(lego_camera)
        assert img.shape == (32, 32, 3)
        assert stats_reuse.get("rays") * 15 < stats_full.get("rays") * 1.05

    def test_invalid_pixel_reuse(self, kilonerf_model, lego_field):
        with pytest.raises(ConfigError):
            NerfRenderer(kilonerf_model, lego_field, pixel_reuse=0)
