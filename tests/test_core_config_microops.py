"""Tests for the accelerator configuration and micro-operator IR."""

import pytest

from repro.core import MicroOp, MicroOpProgram, TABLE_II
from repro.core.config import AcceleratorConfig
from repro.core.microops import (
    IndexFunction,
    MemAccessPattern,
    MicroOpInvocation,
    Workload,
)
from repro.errors import CompileError, ConfigError


class TestConfig:
    def test_paper_design_point(self):
        cfg = AcceleratorConfig()
        assert cfg.n_pes == 256                      # 16x16 array
        assert cfg.clock_hz == 1.0e9                 # 1 GHz
        assert cfg.dram_bandwidth == 59.7e9          # LPDDR4-1866
        assert cfg.global_buffer_bytes == 256 * 1024
        assert cfg.local_sram_bytes == 1_280 * 1024  # 1.25 MB (Fig. 9a)
        assert cfg.ff_scratchpad_bytes == 4 * 512 * 2

    def test_peak_rates(self):
        cfg = AcceleratorConfig()
        assert cfg.peak_bf16_macs_per_cycle == 1024
        assert cfg.peak_int16_macs_per_cycle == 1024
        assert cfg.dram_bytes_per_cycle == pytest.approx(59.7)

    def test_validation(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig(pe_rows=0)
        with pytest.raises(ConfigError):
            AcceleratorConfig(clock_hz=-1)
        with pytest.raises(ConfigError):
            AcceleratorConfig(gemm_buffer_stage_overhead=-0.1)

    def test_scaling_pe_only_keeps_total_sram(self):
        base = AcceleratorConfig()
        scaled = base.scaled(pe_scale=2, sram_scale=1)
        assert scaled.n_pes == 512
        assert scaled.local_sram_bytes == base.local_sram_bytes
        assert scaled.global_buffer_bytes == base.global_buffer_bytes

    def test_scaling_sram_only_keeps_pes(self):
        base = AcceleratorConfig()
        scaled = base.scaled(pe_scale=1, sram_scale=4)
        assert scaled.n_pes == base.n_pes
        assert scaled.local_sram_bytes == 4 * base.local_sram_bytes
        assert scaled.global_buffer_bytes == 4 * base.global_buffer_bytes

    def test_scaling_both(self):
        scaled = AcceleratorConfig().scaled(pe_scale=4, sram_scale=4)
        assert scaled.n_pes == 1024
        assert scaled.local_sram_bytes == 4 * 1280 * 1024

    def test_scaling_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            AcceleratorConfig().scaled(pe_scale=3)
        with pytest.raises(ConfigError):
            AcceleratorConfig().scaled(sram_scale=0)


class TestTableII:
    def test_all_five_microops_present(self):
        assert set(TABLE_II) == set(MicroOp)

    def test_geometric_row(self):
        steps, indexing, reduction = TABLE_II[MicroOp.GEOMETRIC]
        assert "rasterization" in steps and "splatting" in steps
        assert indexing.item == "mesh/gaussian"
        assert indexing.dims == (1,)
        assert indexing.functions == (IndexFunction.AUTOMATIC_COUNTER,)
        assert reduction.pattern is MemAccessPattern.CONTINUOUS

    def test_combined_grid_row(self):
        _steps, indexing, reduction = TABLE_II[MicroOp.COMBINED_GRID]
        assert IndexFunction.RANDOM_HASH in indexing.functions
        assert reduction.pattern is MemAccessPattern.DISCRETE

    def test_sorting_row_continuous(self):
        _steps, _indexing, reduction = TABLE_II[MicroOp.SORTING]
        assert reduction.pattern is MemAccessPattern.CONTINUOUS


class TestWorkload:
    def test_rejects_negative(self):
        with pytest.raises(CompileError):
            Workload(int_ops=-1)

    def test_scaled_keeps_working_set(self):
        w = Workload(int_ops=100, working_set_bytes=5000, streaming_bytes=10)
        s = w.scaled(0.5)
        assert s.int_ops == 50
        assert s.streaming_bytes == 5
        assert s.working_set_bytes == 5000

    def test_invocation_requires_microop(self):
        with pytest.raises(CompileError):
            MicroOpInvocation("gemm", "x", Workload())


class TestProgram:
    def test_ops_used_in_order(self):
        prog = MicroOpProgram(pipeline="test")
        prog.append(MicroOp.GEMM, "a", Workload(items=1))
        prog.append(MicroOp.SORTING, "b", Workload(items=1))
        prog.append(MicroOp.GEMM, "c", Workload(items=1))
        assert prog.ops_used() == (MicroOp.GEMM, MicroOp.SORTING)

    def test_total_sums_fields(self):
        prog = MicroOpProgram(pipeline="test")
        prog.append(MicroOp.GEMM, "a", Workload(bf16_ops=10))
        prog.append(MicroOp.GEMM, "b", Workload(bf16_ops=32))
        assert prog.total("bf16_ops") == 42
