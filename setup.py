"""Classic setup shim.

The execution environment has no network and no `wheel` package, so PEP 660
editable installs (`pip install -e .`) cannot build an editable wheel.
`python setup.py develop` achieves the same result with the tooling that is
available offline. Configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
