#!/usr/bin/env bash
# One-command verify: clean stale bytecode, fail fast on collection
# errors, run the tier-1 suite (with the scheduler invariant, chaos,
# and observability suites called out explicitly, so they still run if
# testpaths ever change), pin the event-engine perf-smoke floors
# (single-tenant, the multi-tenant QoS path, both autoscaler modes,
# the observer on/off floors, and the fault path), then smoke-run the
# serving CLI end to end — static fleet, autoscaled heterogeneous
# fleet with admission, async compile with prefetch, a two-tenant QoS
# run with weighted admission and preemption, a strict-tier QoS run
# diffed columnar-vs---no-columnar (the per-tier lanes must be
# byte-identical to the scalar loop), a chaos run with fault
# injection and hedging, a predictive-autoscaling run that round-trips
# a trace library through a temp dir (the second invocation must
# warm-start from what the first one flushed), and an observability
# run whose --trace-out artifact must schema-validate and summarize.
# Finally, pin the sweep runner's determinism contract: the same sweep
# run serially and across 2 worker processes must merge to
# byte-identical JSON — then smoke the federation layer: a two-region
# `repro federate` outage run diffed for determinism (federated arm
# fails over, naive arm strands the wave), and the ext_federation
# experiment written under benchmarks/results/ for the CI artifact.
set -euo pipefail
cd "$(dirname "$0")/.."

find . -type d -name __pycache__ -prune -exec rm -rf {} +
find . -type f -name '*.pyc' -delete

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
# Collection pre-step: a suite that cannot even import must fail the
# run loudly here, not surface as a confusing mid-run pytest error.
python -m pytest --co -q > /dev/null
python -m pytest -x -q
python -m pytest -q tests/test_serve_invariants.py tests/test_serve_tenants.py \
  tests/test_serve_predictive.py tests/test_serve_faults.py \
  tests/test_serve_federation.py tests/test_artifact_durability.py
python -m pytest -q tests/test_obs_tracer.py tests/test_obs_metrics.py \
  tests/test_obs_export.py tests/test_obs_flight.py tests/test_obs_neutrality.py
python -m pytest -q benchmarks/test_engine_perf.py
LIBDIR="$(mktemp -d)"
trap 'rm -rf "$LIBDIR"' EXIT
python -m repro serve --requests 50 --chips 2 --width 320 --height 180
python -m repro serve --requests 40 --chips 3 --min-chips 1 \
  --traffic bursty --width 320 --height 180 \
  --autoscale --admission slo-shed --fleet-spec '2*1x1,1*2x2'
python -m repro serve --requests 40 --chips 2 --width 160 --height 90 \
  --traffic bursty --compile-workers 2 --prefetch
python -m repro serve --requests 40 --chips 2 --width 160 --height 90 \
  --traffic bursty --rate 300 \
  --tenants 'premium:tier=0,weight=4,share=0.25;economy:tier=1,slo=2' \
  --admission weighted --preempt

# QoS-columnar smoke: a strict-tier two-tenant run (no weighted
# budgets, no preemption) rides the columnar per-tier lanes; its
# report must be byte-identical to the same run forced onto the
# scalar reference loop with --no-columnar.
python -m repro serve --requests 40 --chips 2 --width 160 --height 90 \
  --traffic bursty --rate 300 --seed 5 \
  --tenants 'premium:tier=0,share=0.25;economy:tier=1,slo=2' \
  > "$LIBDIR/qos_columnar.txt"
python -m repro serve --requests 40 --chips 2 --width 160 --height 90 \
  --traffic bursty --rate 300 --seed 5 \
  --tenants 'premium:tier=0,share=0.25;economy:tier=1,slo=2' \
  --no-columnar > "$LIBDIR/qos_scalar.txt"
diff "$LIBDIR/qos_columnar.txt" "$LIBDIR/qos_scalar.txt"

# Chaos serving: literal fault spec (recoverable crash + straggler +
# rollback) with hedging, and a seeded random plan; both must report
# the fault scoreboard.
python -m repro serve --requests 60 --chips 3 --width 160 --height 90 \
  --traffic bursty --rate 300 \
  --faults 'crash=1@0.02+0.05;slow=2@0.0-0.2x4;rollback=0.002' \
  --hedge | grep "availability" > /dev/null
python -m repro serve --requests 60 --chips 3 --width 160 --height 90 \
  --traffic bursty --rate 300 \
  --faults 'seeded:seed=7,chips=3,horizon=0.2,crashes=2,stragglers=2' \
  | grep "crashes" > /dev/null

# Predictive serving: trace-library round trip + forecast-led autoscaling.
python -m repro serve --requests 40 --chips 3 --min-chips 1 \
  --traffic diurnal --width 160 --height 90 \
  --trace-library "$LIBDIR/traces.json" --autoscale predictive
test -s "$LIBDIR/traces.json"
python -m repro serve --requests 40 --chips 3 --min-chips 1 \
  --traffic diurnal --width 160 --height 90 \
  --trace-library "$LIBDIR/traces.json" --autoscale predictive \
  > "$LIBDIR/restart.txt"
grep -Eq "hits, [1-9][0-9]* warm-started" "$LIBDIR/restart.txt"

# Observability: full-sink serve run, then schema-validate the Chrome
# trace artifact and summarize it through the `repro trace` command.
python -m repro serve --requests 40 --chips 2 --width 160 --height 90 \
  --traffic bursty --rate 300 --admission slo-shed \
  --trace-out "$LIBDIR/serve.trace.json" \
  --metrics-out "$LIBDIR/metrics.csv" --flight-recorder
python - "$LIBDIR/serve.trace.json" <<'PY'
import sys
from repro.obs import load_chrome_trace, validate_chrome_trace
n = validate_chrome_trace(load_chrome_trace(sys.argv[1]))
print(f"trace artifact schema-valid: {n} events")
PY
python -m repro trace "$LIBDIR/serve.trace.json" > "$LIBDIR/trace_summary.txt"
grep -q "trace events" "$LIBDIR/trace_summary.txt"
head -1 "$LIBDIR/metrics.csv" | grep -q '^t_s,'

# Parallel sweep runner: 2 configurations across 2 worker processes
# must merge byte-identically to the serial run (seeded traces, no
# wall-clock in the artifact, name-sorted merge). The rate axis lists
# one value twice in different float spellings — the parser must
# collapse them to one arm instead of minting colliding merge keys,
# so the artifact must merge to exactly 2 points (each point also
# echoes its spec, so counting "name" lines would double-count).
python -m repro sweep --set requests=80 --vary 'rate=400.0,400' \
  --vary chips=2,3 --workers 1 --out "$LIBDIR/sweep_serial.json"
python -m repro sweep --set requests=80 --vary 'rate=400.0,400' \
  --vary chips=2,3 --workers 2 --out "$LIBDIR/sweep_parallel.json"
diff "$LIBDIR/sweep_serial.json" "$LIBDIR/sweep_parallel.json"
grep -qx '  "n_points": 2,' "$LIBDIR/sweep_serial.json"

# Federated serving: a two-region planet whose western wave rides
# behind an outage window. The federated run must fail the stranded
# wave over (no hard failures), the naive control arm must strand it,
# and the same invocation twice must diff byte-identically — the
# federation loop's determinism contract.
python -m repro federate --regions 'east:chips=2;west:tz=8,chips=2' \
  --requests 40 --rate 200 --traffic steady \
  --faults 'outage=west@1.3+0.5' > "$LIBDIR/federate_one.txt"
python -m repro federate --regions 'east:chips=2;west:tz=8,chips=2' \
  --requests 40 --rate 200 --traffic steady \
  --faults 'outage=west@1.3+0.5' > "$LIBDIR/federate_two.txt"
diff "$LIBDIR/federate_one.txt" "$LIBDIR/federate_two.txt"
grep -q "failed 0" "$LIBDIR/federate_one.txt"
grep -q "failovers 40" "$LIBDIR/federate_one.txt"
python -m repro federate --regions 'east:chips=2;west:tz=8,chips=2' \
  --requests 40 --rate 200 --traffic steady --router naive --no-gossip \
  --faults 'outage=west@1.3+0.5' > "$LIBDIR/federate_naive.txt"
grep -q "failed 40" "$LIBDIR/federate_naive.txt"

# The ext_federation experiment (healthy / naive / federated arms over
# the frozen three-region chaos plan), written under benchmarks/results/
# so CI uploads it next to BENCH_engine.json.
mkdir -p benchmarks/results
python -m repro sweep --experiment ext_federation --workers 3 \
  --out benchmarks/results/ext_federation.json
grep -q '"name": "ext_federation/federated"' benchmarks/results/ext_federation.json
