#!/usr/bin/env bash
# One-command verify: clean stale bytecode, run the tier-1 suite, then
# smoke-run the serving CLI end to end.
set -euo pipefail
cd "$(dirname "$0")/.."

find . -type d -name __pycache__ -prune -exec rm -rf {} +
find . -type f -name '*.pyc' -delete

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
python -m pytest -x -q
python -m repro serve --requests 50 --chips 2 --width 320 --height 180
